// Fleet sweep throughput and crash-recovery overhead.
//
// Drives the fleet worker path (src/fleet) in-process over a
// million-chip population: chunked streaming accumulation, per-chunk
// journal records, done-snapshot publication, and the global merge.
// Measures
//
//   1. clean throughput — chips/s for an uninterrupted single-shard run
//      (journaling on, fsync off: the bench measures compute + framing,
//      not the disk),
//   2. crash-recovery overhead — a run that "dies" after completing half
//      its chunks (phase 1) and is then resumed from the journal to
//      completion (phase 2); overhead = (T1 + T2) / T_clean - 1. The
//      acceptance gate is <= 15%, and the recovered report must be
//      byte-identical to the clean one (enforced by the exit code).
//
// Results go to BENCH_fleet.json in the working directory (or
// $OBDREL_CSV_DIR). Scaling knobs: OBDREL_FLEET_CHIPS (default 1000000),
// OBDREL_FLEET_BINS (default 32).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "core/device_model.hpp"
#include "core/problem.hpp"
#include "fleet/shard.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"
#include "variation/model.hpp"

namespace {

namespace fs = std::filesystem;

// Runs one worker over `dir` and returns the wall time.
double run_shard(const obd::core::ReliabilityProblem& problem,
                 const obd::fleet::FleetSpec& spec, const std::string& dir,
                 std::uint64_t shard, std::uint64_t shards) {
  obd::fleet::WorkerOptions w;
  w.dir = dir;
  w.shard = shard;
  w.shards = shards;
  w.sync_journal = false;  // measure compute + framing, not fsync latency
  obd::Stopwatch sw;
  obd::fleet::run_worker(problem, spec, w);
  return sw.seconds();
}

std::string merged_report(const obd::fleet::FleetSpec& spec,
                          const std::string& dir, std::uint64_t shards) {
  std::map<std::uint64_t, obd::fleet::ChunkResult> chunks;
  for (std::uint64_t k = 0; k < shards; ++k)
    chunks.merge(obd::fleet::load_shard_chunks(dir, k, spec));
  return obd::fleet::render_report(
      obd::fleet::merge_chunks(spec, chunks));
}

}  // namespace

int main() {
  using namespace obd;
  const std::uint64_t chips = bench::env_size("OBDREL_FLEET_CHIPS", 1000000);
  const std::size_t bins = bench::env_size("OBDREL_FLEET_BINS", 32);

  const chip::Design design = chip::make_synthetic_design(
      "fleet-bench", {.devices = 20000, .block_count = 4, .die_width = 4.0,
                      .die_height = 4.0, .seed = 7});
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  core::ProblemOptions popts;
  popts.grid_cells_per_side = 12;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, core::AnalyticReliabilityModel{},
      profile.block_temps_c, 1.2, popts);

  fleet::FleetSpec spec;
  spec.chips = chips;
  spec.ts = {5.0 * bench::kYear, 10.0 * bench::kYear, 20.0 * bench::kYear};
  spec.seed = 99;
  spec.thickness_bins = bins;
  spec.problem_key = "fleet-bench";

  const std::string root = "fleet-bench.state";
  fs::remove_all(root);
  fs::create_directories(root + "/clean");
  fs::create_directories(root + "/crash");

  std::printf("Fleet sweep bench: %llu chips, %llu chunks of %llu, "
              "%zu-point sweep, %zu thickness bins.\n\n",
              static_cast<unsigned long long>(chips),
              static_cast<unsigned long long>(fleet::chunk_count(spec)),
              static_cast<unsigned long long>(fleet::kChunkChips),
              spec.ts.size(), bins);

  // 1. Clean single-shard run.
  const double t_clean =
      run_shard(problem, spec, root + "/clean", 0, 1);
  const double chips_per_s = static_cast<double>(chips) / t_clean;
  std::printf("clean run:      %8.2f s  (%.0f chips/s)\n", t_clean,
              chips_per_s);

  // 2. Crash at the halfway point: phase 1 computes the first half of the
  // chunk space (a 2-shard partition's shard 0 writes the same shard-0
  // journal a 1-shard run owns), then the "restarted" single-shard worker
  // resumes from that journal and completes the rest.
  const double t_phase1 =
      run_shard(problem, spec, root + "/crash", 0, 2);
  const double t_phase2 =
      run_shard(problem, spec, root + "/crash", 0, 1);
  const double t_recovered = t_phase1 + t_phase2;
  const double overhead = t_recovered / t_clean - 1.0;
  std::printf("crashed run:    %8.2f s  (%.2f s to the crash, %.2f s "
              "resumed)\n",
              t_recovered, t_phase1, t_phase2);
  std::printf("recovery overhead: %.1f%% (budget 15%%)\n", 100.0 * overhead);

  // 3. The recovered report must be the clean report, byte for byte.
  const std::string clean_report = merged_report(spec, root + "/clean", 1);
  const std::string crash_report = merged_report(spec, root + "/crash", 1);
  const bool identical = clean_report == crash_report;
  const bool overhead_ok = overhead <= 0.15;
  std::printf("recovered report %s the clean report\n",
              identical ? "MATCHES" : "DIFFERS FROM (determinism bug!)");

  fs::remove_all(root);

  const std::string dir = csv_output_dir();
  const std::string path =
      (dir.empty() ? std::string{} : dir + "/") + "BENCH_fleet.json";
  std::ofstream out(path);
  out << "{\n  \"chips\": " << chips << ",\n"
      << "  \"chunks\": " << fleet::chunk_count(spec) << ",\n"
      << "  \"sweep_points\": " << spec.ts.size() << ",\n"
      << "  \"thickness_bins\": " << bins << ",\n"
      << "  \"clean_seconds\": " << t_clean << ",\n"
      << "  \"chips_per_second\": " << chips_per_s << ",\n"
      << "  \"crash_phase1_seconds\": " << t_phase1 << ",\n"
      << "  \"crash_resume_seconds\": " << t_phase2 << ",\n"
      << "  \"recovery_overhead\": " << overhead << ",\n"
      << "  \"recovery_overhead_ok\": " << (overhead_ok ? "true" : "false")
      << ",\n  \"recovered_identical\": " << (identical ? "true" : "false")
      << ",\n  \"pass\": "
      << ((identical && overhead_ok) ? "true" : "false") << "\n}\n";
  std::printf("(wrote %s)\n", path.c_str());
  return (identical && overhead_ok) ? 0 : 1;
}
