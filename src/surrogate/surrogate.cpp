#include "surrogate/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "mech/mechanism.hpp"

namespace obd::surrogate {
namespace {

std::string fmt17(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Fit-space transform: y = ln(H_c) for a channel hazard H_c = -ls_c,
/// taken from the engine's log-survival so it keeps resolving smoothly
/// after F itself rounds to 1.0 (H ~ 37) — fitting ln(-log1p(-F)) instead
/// would plateau there and the kink destroys spectral convergence
/// globally. H is clamped to [1e-300, 1e4]: the floor keeps an
/// exactly-zero hazard finite in log space, the ceiling keeps a
/// dead-spare-group -inf finite; both sit so deep in the F in {0, 1}
/// plateaus (e^-1e4 below any representable deviation) that the clamp
/// cannot move a certified answer.
double y_of_ls(double ls) {
  return std::log(std::clamp(-ls, 1e-300, 1e4));
}

double f_of_hazard(double h) { return -std::expm1(-h); }

/// Relative-error floor: a reference this small is numerically zero and
/// absolute error is the meaningful metric there.
constexpr double kRelFloor = 1e-12;

double rel_error(double surrogate, double reference) {
  return std::abs(surrogate - reference) /
         std::max(std::abs(reference), kRelFloor);
}

double frac(double v) { return v - std::floor(v); }

}  // namespace

core::HybridOptions fit_reference_options(
    const core::ReliabilityProblem& problem,
    const SurrogateOptions& options) {
  const core::AnalyticReliabilityModel model(options.model);
  const double t_lo = options.t_lo_years * mech::kSecondsPerYear;
  const double t_hi = options.t_hi_years * mech::kSecondsPerYear;
  const double vdd_c = problem.vdd();
  double glo = std::numeric_limits<double>::infinity();
  double ghi = -glo;
  double blo = glo;
  double bhi = -glo;
  // alpha is monotone in T and vdd and b is piecewise-linear monotone in
  // T, so the domain-box corners bound the (gamma, b) ranges; the pads
  // below absorb the clamp corner and interpolation stencils.
  for (const double dt : {-options.dt_c, options.dt_c}) {
    for (const double vdd : {vdd_c - options.dvdd, vdd_c + options.dvdd}) {
      for (const core::BlockParams& blk : problem.blocks()) {
        const double temp_c = blk.temp_c + dt;
        const double alpha = model.alpha(temp_c, vdd);
        const double b = model.b(temp_c, vdd);
        glo = std::min(glo, std::log(t_lo / alpha));
        ghi = std::max(ghi, std::log(t_hi / alpha));
        blo = std::min(blo, b);
        bhi = std::max(bhi, b);
      }
    }
  }
  core::HybridOptions ho;
  ho.n_gamma = std::max<std::size_t>(options.fit_n_gamma, 8);
  ho.n_b = std::max<std::size_t>(options.fit_n_b, 4);
  ho.gamma_lo = glo - 0.25;
  ho.gamma_hi = ghi + 0.25;
  ho.b_lo = blo - 0.01;
  ho.b_hi = bhi + 0.01;
  return ho;
}

SurrogateModel SurrogateModel::fit(const core::ReliabilityProblem& problem,
                                   const SurrogateOptions& options) {
  require(options.dt_c > 0.0 && options.dvdd > 0.0 &&
              options.act_hi > options.act_lo && options.act_lo > 0.0 &&
              options.t_hi_years > options.t_lo_years &&
              options.t_lo_years > 0.0,
          ErrorCode::kConfig, "surrogate: domain box must be non-empty");
  require(options.n_t >= 2 && options.n_t_aging >= 2 && options.n_dt >= 2 &&
              options.n_vdd >= 2 && options.n_act >= 1 && options.tol > 0.0,
          ErrorCode::kConfig,
          "surrogate: need >= 2 nodes per active axis and a positive tol");

  SurrogateModel m;
  m.domain_.dt_lo = -options.dt_c;
  m.domain_.dt_hi = options.dt_c;
  m.domain_.vdd_lo = problem.vdd() - options.dvdd;
  m.domain_.vdd_hi = problem.vdd() + options.dvdd;
  m.domain_.act_lo = options.act_lo;
  m.domain_.act_hi = options.act_hi;
  m.domain_.t_lo = options.t_lo_years * mech::kSecondsPerYear;
  m.domain_.t_hi = options.t_hi_years * mech::kSecondsPerYear;

  core::HybridEvaluator reference(problem,
                                  fit_reference_options(problem, options));
  core::ConditionEvaluator ref(reference, options.model);

  // The ln-t axis is innermost during fitting, so the corner (the
  // expensive part: N setter calls) is applied once per n_t samples. Node
  // coordinates are bitwise-reproducible per call, so the equality check
  // is exact.
  double last_dt = std::numeric_limits<double>::quiet_NaN();
  double last_vdd = last_dt;
  double last_act = last_dt;
  // The activity axis lives in ln(act): lognormal t50 acceleration is a
  // power law in activity, so ln t50 — and with it each channel's
  // log-hazard — is nearly linear in ln(act) but logarithmic in act.
  // Log-space costs nothing (evaluate() maps act -> ln act) and buys
  // ~15x on the certified max error at the same node counts.
  const auto fit_channel = [&](std::size_t n_t, std::size_t n_act,
                               auto&& ls_at) {
    std::vector<ChebAxis> axes = {
        {std::log(m.domain_.t_lo), std::log(m.domain_.t_hi), n_t},
        {m.domain_.dt_lo, m.domain_.dt_hi, options.n_dt},
        {m.domain_.vdd_lo, m.domain_.vdd_hi, options.n_vdd},
        {std::log(m.domain_.act_lo), std::log(m.domain_.act_hi), n_act},
    };
    last_dt = std::numeric_limits<double>::quiet_NaN();
    const auto fn = [&](const double* x) {
      if (x[1] != last_dt || x[2] != last_vdd || x[3] != last_act) {
        ref.set_corner(x[1], x[2], std::exp(x[3]));
        last_dt = x[1];
        last_vdd = x[2];
        last_act = x[3];
      }
      return y_of_ls(ls_at(std::exp(x[0])));
    };
    m.channels_.push_back(ChebTensor::fit(std::move(axes), fn));
  };

  const mech::MechanismStack& stack = problem.mechanisms();
  if (stack.trivial()) {
    // Oxide only; activity cannot reach the result, one node pins it.
    fit_channel(options.n_t, 1,
                [&](double t) { return ref.oxide_log_survival(t); });
  } else if (!stack.has_redundancy()) {
    // Channel-separable: chip ls is exactly oxide ls + each mechanism ls.
    fit_channel(options.n_t, 1,
                [&](double t) { return ref.oxide_log_survival(t); });
    for (std::size_t mech_i = 0; mech_i < stack.extras().size(); ++mech_i) {
      fit_channel(options.n_t_aging, options.n_act, [&](double t) {
        return ref.mechanism_log_survival(mech_i, t);
      });
    }
  } else {
    // Spare groups mix the channels (Poisson-binomial over combined
    // per-block failure probabilities) — fit the joint log-survival and
    // let certification refuse if the log-sum-exp elbow is in the box.
    fit_channel(options.n_t_aging, options.n_act,
                [&](double t) { return ref.evaluate_ls(t); });
  }
  m.cert_ = certify(m, ref, options.probe_points, options.tol);
  return m;
}

double SurrogateModel::evaluate(double dt, double vdd, double act,
                                double t) const {
  const double x[4] = {std::log(t), dt, vdd, std::log(act)};
  double hazard = 0.0;
  for (const ChebTensor& c : channels_) hazard += std::exp(c.eval(x));
  return f_of_hazard(hazard);
}

std::vector<double> SurrogateModel::plan_corner(double dt, double vdd,
                                                double act) const {
  const double tail[3] = {dt, vdd, std::log(act)};
  std::vector<double> plan;
  for (const ChebTensor& c : channels_) {
    const std::vector<double> pencil = c.contract_tail(tail);
    plan.insert(plan.end(), pencil.begin(), pencil.end());
  }
  return plan;
}

double SurrogateModel::evaluate_at(const std::vector<double>& plan,
                                   double t) const {
  const double lt = std::log(t);
  double hazard = 0.0;
  std::size_t offset = 0;
  for (const ChebTensor& c : channels_) {
    const std::size_t n0 = c.axes()[0].n;
    hazard += std::exp(c.eval_pencil_at(plan.data() + offset, n0, lt));
    offset += n0;
  }
  return f_of_hazard(hazard);
}

SurrogateCertificate certify(const SurrogateModel& model,
                             core::ConditionEvaluator& ref,
                             std::size_t probe_points, double tol) {
  SurrogateCertificate cert;
  cert.tol = tol;
  double sum = 0.0;

  const auto probe = [&](double dt, double vdd, double act, double t) {
    ref.set_corner(dt, vdd, act);
    const double exact = ref.evaluate(t);
    const double approx = model.evaluate(dt, vdd, act, t);
    const double rel = rel_error(approx, exact);
    cert.max_rel_error = std::max(cert.max_rel_error, rel);
    sum += rel;
    ++cert.probes;
  };

  // Held-out grid: per channel, the tensor of inter-node midpoints —
  // where a Chebyshev interpolant's error peaks — evaluated
  // corner-outermost so the exact reference reuses its incremental rows
  // across the ln-t sweep. Every channel's grid probes the FULL model
  // (channels sum into one hazard), so each channel is stressed at its
  // own worst points.
  for (const ChebTensor& channel : model.channels()) {
    const std::vector<ChebAxis>& axes = channel.axes();
    for (std::size_t ia = 0; ia < axes[3].midpoint_count(); ++ia) {
      for (std::size_t iv = 0; iv < axes[2].midpoint_count(); ++iv) {
        for (std::size_t id = 0; id < axes[1].midpoint_count(); ++id) {
          for (std::size_t it = 0; it < axes[0].midpoint_count(); ++it) {
            probe(axes[1].midpoint(id), axes[2].midpoint(iv),
                  std::exp(axes[3].midpoint(ia)),
                  std::exp(axes[0].midpoint(it)));
          }
        }
      }
    }
  }

  // Low-discrepancy interior probes: a 4-D Weyl (Kronecker) sequence on
  // sqrt-prime increments — deterministic, no RNG, equidistributed — so
  // re-running certification reproduces the certificate bit for bit.
  const SurrogateDomain& d = model.domain();
  const double lt_lo = std::log(d.t_lo);
  const double lt_hi = std::log(d.t_hi);
  for (std::size_t k = 1; k <= probe_points; ++k) {
    const double kk = static_cast<double>(k);
    const double dt =
        d.dt_lo + frac(kk * std::sqrt(2.0)) * (d.dt_hi - d.dt_lo);
    const double vdd =
        d.vdd_lo + frac(kk * std::sqrt(3.0)) * (d.vdd_hi - d.vdd_lo);
    const double act =
        d.act_lo + frac(kk * std::sqrt(5.0)) * (d.act_hi - d.act_lo);
    const double t =
        std::exp(lt_lo + frac(kk * std::sqrt(7.0)) * (lt_hi - lt_lo));
    probe(dt, vdd, act, t);
  }

  cert.mean_rel_error =
      cert.probes > 0 ? sum / static_cast<double>(cert.probes) : 0.0;
  cert.certified = cert.max_rel_error <= tol;
  return cert;
}

std::string SurrogateModel::save_text() const {
  std::ostringstream os;
  os << "obdrel-surrogate 1\n";
  os << "domain " << fmt17(domain_.dt_lo) << ' ' << fmt17(domain_.dt_hi)
     << ' ' << fmt17(domain_.vdd_lo) << ' ' << fmt17(domain_.vdd_hi) << ' '
     << fmt17(domain_.act_lo) << ' ' << fmt17(domain_.act_hi) << ' '
     << fmt17(domain_.t_lo) << ' ' << fmt17(domain_.t_hi) << '\n';
  os << "channels " << channels_.size() << '\n';
  for (const ChebTensor& ch : channels_) {
    os << "axes " << ch.axes().size() << '\n';
    for (const ChebAxis& a : ch.axes())
      os << "axis " << fmt17(a.lo) << ' ' << fmt17(a.hi) << ' ' << a.n
         << '\n';
    os << "coeffs " << ch.coefficients().size() << '\n';
    for (const double c : ch.coefficients()) os << fmt17(c) << '\n';
  }
  os << "cert " << fmt17(cert_.max_rel_error) << ' '
     << fmt17(cert_.mean_rel_error) << ' ' << cert_.probes << ' '
     << fmt17(cert_.tol) << ' ' << (cert_.certified ? 1 : 0) << '\n';
  os << "end\n";
  return os.str();
}

std::optional<SurrogateModel> SurrogateModel::load_text(
    const std::string& text) {
  std::istringstream is(text);
  std::string word;
  int version = 0;
  if (!(is >> word >> version) || word != "obdrel-surrogate" || version != 1)
    return std::nullopt;
  SurrogateModel m;
  if (!(is >> word) || word != "domain") return std::nullopt;
  SurrogateDomain& d = m.domain_;
  if (!(is >> d.dt_lo >> d.dt_hi >> d.vdd_lo >> d.vdd_hi >> d.act_lo >>
        d.act_hi >> d.t_lo >> d.t_hi))
    return std::nullopt;
  std::size_t n_channels = 0;
  if (!(is >> word >> n_channels) || word != "channels" || n_channels == 0 ||
      n_channels > 16)
    return std::nullopt;
  for (std::size_t ci = 0; ci < n_channels; ++ci) {
    std::size_t n_axes = 0;
    if (!(is >> word >> n_axes) || word != "axes" || n_axes == 0 ||
        n_axes > 8)
      return std::nullopt;
    std::vector<ChebAxis> axes(n_axes);
    std::size_t total = 1;
    for (ChebAxis& a : axes) {
      if (!(is >> word >> a.lo >> a.hi >> a.n) || word != "axis" ||
          a.n == 0 || a.n > 256 || !(a.hi > a.lo))
        return std::nullopt;
      total *= a.n;
    }
    std::size_t count = 0;
    if (!(is >> word >> count) || word != "coeffs" || count != total ||
        count > (std::size_t{1} << 24))
      return std::nullopt;
    std::vector<double> coeffs(count);
    for (double& c : coeffs)
      if (!(is >> c)) return std::nullopt;
    m.channels_.emplace_back(std::move(axes), std::move(coeffs));
  }
  SurrogateCertificate& cert = m.cert_;
  int certified = 0;
  if (!(is >> word >> cert.max_rel_error >> cert.mean_rel_error >>
        cert.probes >> cert.tol >> certified) ||
      word != "cert")
    return std::nullopt;
  cert.certified = certified != 0;
  if (!(is >> word) || word != "end") return std::nullopt;
  return m;
}

}  // namespace obd::surrogate
