#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace obd::serve {
namespace {

// Writes `line` + '\n' to `fd`, retrying short writes. A failed write —
// typically a client that hung up before its reply — is reported to the
// caller but is never fatal: the reply was produced, delivery is
// best-effort once the peer is gone.
bool write_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  const char* data = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

int make_listen_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(!path.empty() && path.size() < sizeof(addr.sun_path),
          ErrorCode::kConfig,
          "serve: socket path must be 1.." +
              std::to_string(sizeof(addr.sun_path) - 1) +
              " characters, got '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, ErrorCode::kIo,
          std::string("serve: cannot create socket: ") +
              std::strerror(errno));
  // A previous daemon instance (or an unclean kill) leaves the socket file
  // behind; binding over it is the expected restart path.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("serve: cannot listen on '" + path + "': " + reason,
                ErrorCode::kIo);
  }
  return fd;
}

}  // namespace

int accept_client(int listen_fd) {
  if (fault::should_fire(fault::site::kServeAccept)) {
    diagnostics().warn("serve.accept",
                       "injected accept failure; the connection stays "
                       "queued for the next poll wakeup");
    return -1;
  }
  int fd = -1;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0)
    diagnostics().warn("serve.accept", std::string("accept failed: ") +
                                           std::strerror(errno));
  return fd;
}

Server::Server(QueryEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

int Server::run() {
  // A client that disconnects mid-reply must cost one failed write, not
  // the process.
  std::signal(SIGPIPE, SIG_IGN);

  struct Admitted {
    PendingQuery query;
    int reply_fd;
  };
  std::deque<Admitted> pending;
  std::map<int, std::string> clients;  // connected fd -> partial-line buffer
  std::string stdin_buffer;
  bool stdin_eof = false;
  int listen_fd = -1;
  if (options_.use_stdin) {
    std::fprintf(stderr, "serve: reading queries from stdin\n");
  } else {
    listen_fd = make_listen_socket(options_.socket_path);
    std::fprintf(stderr, "serve: listening on '%s'\n",
                 options_.socket_path.c_str());
  }

  const auto stopping = [&] {
    return options_.stop_flag != nullptr && *options_.stop_flag != 0;
  };

  const auto health_line = [&](const std::string& id) {
    const EngineStats& es = engine_.stats();
    const CacheStats& cs = engine_.cache().stats();
    std::ostringstream os;
    if (!id.empty()) os << "id=" << id << ' ';
    os << "ok=1 health=1 pending=" << pending.size()
       << " received=" << stats_.received << " answered=" << es.answered
       << " degraded=" << es.degraded
       << " errors=" << es.errors + stats_.parse_errors
       << " shed=" << stats_.shed
       << " cache_entries=" << engine_.cache().entries()
       << " cache_bytes=" << engine_.cache().bytes()
       << " hits=" << cs.hits << " disk_hits=" << cs.disk_hits
       << " misses=" << cs.misses << " evictions=" << cs.evictions
       << " corrupt=" << cs.corrupt
       << " write_failures=" << cs.write_failures;
    // Appended only when the features are in play, so a daemon run that
    // never uses them reports byte-identical health lines to one predating
    // the surrogate tier.
    if (engine_.options().surrogate)
      os << " surrogate_hits=" << es.surrogate_hits
         << " surrogate_fallthrough=" << es.surrogate_fallthrough;
    if (es.incremental_hits > 0)
      os << " incremental_hits=" << es.incremental_hits;
    return os.str();
  };

  // Admission control happens here, at ingest: a parsed query is either
  // admitted to the bounded queue or answered `overloaded=1` on the spot.
  // Health probes bypass the queue entirely.
  const auto handle_line = [&](std::string line, int reply_fd) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) return;
    Request req;
    try {
      req = parse_request(line);
    } catch (const Error& e) {
      ++stats_.parse_errors;
      write_line(reply_fd, std::string("id=? error=") + to_string(e.code()) +
                               " msg=" + e.what());
      return;
    }
    if (req.op == Request::Op::kHealth) {
      ++stats_.health;
      write_line(reply_fd, health_line(req.id));
      return;
    }
    ++stats_.received;
    if (pending.size() >= options_.queue_limit) {
      ++stats_.shed;
      write_line(reply_fd, "id=" + req.id + " overloaded=1");
      return;
    }
    // The reply fd doubles as the session id scoping incremental-corner
    // reuse (stdin mode is the single session 1).
    pending.push_back(Admitted{
        PendingQuery{std::move(req), std::chrono::steady_clock::now(),
                     reply_fd},
        reply_fd});
  };

  // Splits every complete line out of `buffer` (a trailing partial line
  // stays buffered until its newline arrives).
  const auto drain_lines = [&](std::string& buffer, int reply_fd) {
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      handle_line(buffer.substr(start, nl - start), reply_fd);
      start = nl + 1;
    }
    buffer.erase(0, start);
  };

  const auto evaluate_batch = [&] {
    const std::size_t n = std::min(options_.batch_max, pending.size());
    if (n == 0) return;
    std::vector<PendingQuery> batch;
    std::vector<int> reply_fds;
    batch.reserve(n);
    reply_fds.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(pending[i].query);
      reply_fds.push_back(pending[i].reply_fd);
    }
    const std::vector<std::string> replies = engine_.evaluate(batch);
    for (std::size_t i = 0; i < n; ++i)
      write_line(reply_fds[i], replies[i]);
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(n));
  };

  while (!stopping()) {
    // Natural end of input: stdin closed and everything answered.
    if (options_.use_stdin && stdin_eof && pending.empty()) break;

    std::vector<pollfd> fds;
    if (options_.use_stdin) {
      if (!stdin_eof) fds.push_back({0, POLLIN, 0});
    } else {
      fds.push_back({listen_fd, POLLIN, 0});
      for (const auto& [fd, buffer] : clients)
        fds.push_back({fd, POLLIN, 0});
    }
    // Block only when idle; with work queued just glance at the fds so
    // ingest (and thus shedding) stays current while batches evaluate.
    const int timeout_ms = pending.empty() ? -1 : 0;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // re-check the stop flag
      diagnostics().warn("serve.accept", std::string("poll failed: ") +
                                             std::strerror(errno));
    }

    if (ready > 0) {
      std::vector<int> closed;
      for (const pollfd& p : fds) {
        if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (options_.use_stdin) {
          char chunk[4096];
          const ssize_t r = ::read(0, chunk, sizeof chunk);
          if (r > 0)
            stdin_buffer.append(chunk, static_cast<std::size_t>(r));
          else if (r == 0 || errno != EINTR)
            stdin_eof = true;
          drain_lines(stdin_buffer, 1);
        } else if (p.fd == listen_fd) {
          const int fd = accept_client(listen_fd);
          if (fd >= 0) clients.emplace(fd, std::string());
        } else {
          char chunk[4096];
          const ssize_t r = ::read(p.fd, chunk, sizeof chunk);
          if (r > 0) {
            clients[p.fd].append(chunk, static_cast<std::size_t>(r));
            drain_lines(clients[p.fd], p.fd);
          } else if (r == 0 || errno != EINTR) {
            drain_lines(clients[p.fd], p.fd);
            closed.push_back(p.fd);
          }
        }
      }
      for (const int fd : closed) {
        ::close(fd);
        clients.erase(fd);
        engine_.end_session(fd);
      }
    }

    evaluate_batch();
  }

  // Graceful drain: stop accepting first, then answer everything already
  // admitted, then make the cache durable. Order matters — a drain that
  // flushed before answering could be killed into a state where replies
  // were owed but the accept socket was already gone.
  if (listen_fd >= 0) {
    ::close(listen_fd);
    ::unlink(options_.socket_path.c_str());
  }
  while (!pending.empty()) evaluate_batch();
  const bool flushed = engine_.cache().flush();

  for (const auto& [fd, buffer] : clients) ::close(fd);
  if (stats_.shed > 0)
    diagnostics().stat("serve.shed",
                       "shed " + std::to_string(stats_.shed) +
                           " request(s) at the admission queue bound of " +
                           std::to_string(options_.queue_limit));
  const EngineStats& es = engine_.stats();
  if (engine_.options().surrogate)
    diagnostics().stat(
        "serve.surrogate",
        "surrogate answered " + std::to_string(es.surrogate_hits) +
            " request(s), " + std::to_string(es.surrogate_fallthrough) +
            " fell through to the exact engine");
  if (es.incremental_hits > 0)
    diagnostics().stat("serve.incremental",
                       std::to_string(es.incremental_hits) +
                           " cond evaluation(s) reused incremental rows");
  const CacheStats& cs = engine_.cache().stats();
  std::ostringstream summary;
  summary << "answered " << es.answered << " (degraded " << es.degraded
          << ", errors " << es.errors + stats_.parse_errors << ", shed "
          << stats_.shed << "); cache hits " << cs.hits << ", disk hits "
          << cs.disk_hits << ", misses " << cs.misses << ", evictions "
          << cs.evictions << ", corrupt " << cs.corrupt;
  diagnostics().stat("serve", summary.str());
  std::fprintf(stderr, "serve: drained; %s%s\n", summary.str().c_str(),
               flushed ? "" : " (disk cache flush incomplete)");
  return 0;
}

}  // namespace obd::serve
