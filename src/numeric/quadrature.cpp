#include "numeric/quadrature.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace obd::num {
namespace {

struct GaussRule {
  const double* nodes;    // on [-1, 1], symmetric
  const double* weights;
  std::size_t count;
};

// Standard Gauss–Legendre nodes/weights for 2..8 points.
constexpr double n2[] = {-0.5773502691896257, 0.5773502691896257};
constexpr double w2[] = {1.0, 1.0};
constexpr double n3[] = {-0.7745966692414834, 0.0, 0.7745966692414834};
constexpr double w3[] = {0.5555555555555556, 0.8888888888888888,
                         0.5555555555555556};
constexpr double n4[] = {-0.8611363115940526, -0.3399810435848563,
                         0.3399810435848563, 0.8611363115940526};
constexpr double w4[] = {0.3478548451374538, 0.6521451548625461,
                         0.6521451548625461, 0.3478548451374538};
constexpr double n5[] = {-0.9061798459386640, -0.5384693101056831, 0.0,
                         0.5384693101056831, 0.9061798459386640};
constexpr double w5[] = {0.2369268850561891, 0.4786286704993665,
                         0.5688888888888889, 0.4786286704993665,
                         0.2369268850561891};
constexpr double n6[] = {-0.9324695142031521, -0.6612093864662645,
                         -0.2386191860831969, 0.2386191860831969,
                         0.6612093864662645,  0.9324695142031521};
constexpr double w6[] = {0.1713244923791704, 0.3607615730481386,
                         0.4679139345726910, 0.4679139345726910,
                         0.3607615730481386, 0.1713244923791704};
constexpr double n7[] = {-0.9491079123427585, -0.7415311855993945,
                         -0.4058451513773972, 0.0,
                         0.4058451513773972,  0.7415311855993945,
                         0.9491079123427585};
constexpr double w7[] = {0.1294849661688697, 0.2797053914892766,
                         0.3818300505051189, 0.4179591836734694,
                         0.3818300505051189, 0.2797053914892766,
                         0.1294849661688697};
constexpr double n8[] = {-0.9602898564975363, -0.7966664774136267,
                         -0.5255324099163290, -0.1834346424956498,
                         0.1834346424956498,  0.5255324099163290,
                         0.7966664774136267,  0.9602898564975363};
constexpr double w8[] = {0.1012285362903763, 0.2223810344533745,
                         0.3137066458778873, 0.3626837833783620,
                         0.3626837833783620, 0.3137066458778873,
                         0.2223810344533745, 0.1012285362903763};

GaussRule rule_for(std::size_t points) {
  switch (points) {
    case 2: return {n2, w2, 2};
    case 3: return {n3, w3, 3};
    case 4: return {n4, w4, 4};
    case 5: return {n5, w5, 5};
    case 6: return {n6, w6, 6};
    case 7: return {n7, w7, 7};
    case 8: return {n8, w8, 8};
    default:
      throw Error("gauss_legendre: supported point counts are 2..8");
  }
}

}  // namespace

double midpoint_1d(const Fn1& f, double a, double b, std::size_t cells) {
  require(cells > 0, "midpoint_1d: need at least one cell");
  const double h = (b - a) / static_cast<double>(cells);
  double s = 0.0;
  for (std::size_t i = 0; i < cells; ++i)
    s += f(a + (static_cast<double>(i) + 0.5) * h);
  return s * h;
}

double midpoint_2d(const Fn2& f, double ax, double bx, double ay, double by,
                   std::size_t cells) {
  require(cells > 0, "midpoint_2d: need at least one cell");
  const double hx = (bx - ax) / static_cast<double>(cells);
  const double hy = (by - ay) / static_cast<double>(cells);
  double s = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    const double x = ax + (static_cast<double>(i) + 0.5) * hx;
    for (std::size_t j = 0; j < cells; ++j) {
      const double y = ay + (static_cast<double>(j) + 0.5) * hy;
      s += f(x, y);
    }
  }
  return s * hx * hy;
}

double gauss_legendre_1d(const Fn1& f, double a, double b, std::size_t points,
                         std::size_t panels) {
  require(panels > 0, "gauss_legendre_1d: need at least one panel");
  const GaussRule rule = rule_for(points);
  const double h = (b - a) / static_cast<double>(panels);
  double total = 0.0;
  for (std::size_t p = 0; p < panels; ++p) {
    const double lo = a + static_cast<double>(p) * h;
    const double mid = lo + 0.5 * h;
    double s = 0.0;
    for (std::size_t k = 0; k < rule.count; ++k)
      s += rule.weights[k] * f(mid + 0.5 * h * rule.nodes[k]);
    total += 0.5 * h * s;
  }
  return total;
}

double gauss_legendre_2d(const Fn2& f, double ax, double bx, double ay,
                         double by, std::size_t points, std::size_t panels) {
  return gauss_legendre_1d(
      [&](double x) {
        return gauss_legendre_1d([&](double y) { return f(x, y); }, ay, by,
                                 points, panels);
      },
      ax, bx, points, panels);
}

namespace {

double simpson_recurse(const Fn1& f, double a, double b, double fa,
                       double fm, double fb, double whole, double tol,
                       int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  if (depth <= 0 || std::fabs(left + right - whole) <= 15.0 * tol)
    return left + right + (left + right - whole) / 15.0;
  return simpson_recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         simpson_recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double adaptive_simpson(const Fn1& f, double a, double b, double tolerance) {
  require(b >= a, "adaptive_simpson: invalid interval");
  require(tolerance > 0.0, "adaptive_simpson: tolerance must be positive");
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(0.5 * (a + b));
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  double result = simpson_recurse(f, a, b, fa, fm, fb, whole, tolerance, 40);
  if (fault::should_fire(fault::site::kQuadrature))
    result = std::numeric_limits<double>::quiet_NaN();
  require(std::isfinite(result), ErrorCode::kNonconvergence,
          "adaptive_simpson: integral is non-finite (integrand produced "
          "NaN/Inf or the recursion diverged)");
  return result;
}

double simpson_1d(const Fn1& f, double a, double b, std::size_t cells) {
  require(cells >= 2, "simpson_1d: need at least two cells");
  if (cells % 2 != 0) ++cells;
  const double h = (b - a) / static_cast<double>(cells);
  double s = f(a) + f(b);
  for (std::size_t i = 1; i < cells; ++i)
    s += f(a + static_cast<double>(i) * h) * ((i % 2 == 1) ? 4.0 : 2.0);
  return s * h / 3.0;
}

}  // namespace obd::num
