// Fig. 1 reproduction: temperature profiles of (a) an alpha-class processor
// (EV6-like design C6) and (b) a many-core design, from the Wattch-like
// power model and the HotSpot-like thermal solver. Prints per-block
// temperatures and a coarse ASCII heat map; the paper's observation to
// verify is "hot spots only occupy a small region ... and have around 30
// degrees of temperature difference from the inactive regions".
#include <algorithm>
#include <cstdio>

#include "chip/design.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

namespace {

using namespace obd;

void print_heat_map(const thermal::ThermalProfile& p) {
  // 32x16 ASCII map, intensity ramp from '.' (coolest) to '#' (hottest).
  static const char ramp[] = " .:-=+*%@#";
  const double lo = p.min_c();
  const double hi = p.max_c();
  for (int row = 15; row >= 0; --row) {
    std::printf("  ");
    for (int col = 0; col < 32; ++col) {
      const double x = (col + 0.5) / 32.0 * p.die_width;
      const double y = (row + 0.5) / 16.0 * p.die_height;
      const double t = p.at(x, y);
      const int idx = std::clamp(
          static_cast<int>((t - lo) / (hi - lo + 1e-12) * 9.0), 0, 9);
      std::printf("%c", ramp[idx]);
    }
    std::printf("\n");
  }
}

void analyze(const chip::Design& design, const char* caption) {
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 64}, 3);
  const auto power =
      power::estimate_power(design, power::PowerParams{},
                            profile.block_temps_c);

  std::printf("%s\n", caption);
  std::printf("  total power %.1f W, field %.1f .. %.1f C (spread %.1f C)\n\n",
              power.total(), profile.min_c(), profile.max_c(),
              profile.max_c() - profile.min_c());
  print_heat_map(profile);

  // Hottest and coolest blocks.
  std::size_t hot = 0;
  std::size_t cold = 0;
  for (std::size_t j = 1; j < design.blocks.size(); ++j) {
    if (profile.block_temps_c[j] > profile.block_temps_c[hot]) hot = j;
    if (profile.block_temps_c[j] < profile.block_temps_c[cold]) cold = j;
  }
  std::printf("\n  hottest block: %-12s %.1f C\n",
              design.blocks[hot].name.c_str(), profile.block_temps_c[hot]);
  std::printf("  coolest block: %-12s %.1f C\n",
              design.blocks[cold].name.c_str(), profile.block_temps_c[cold]);

  if (design.blocks.size() <= 20) {
    std::printf("\n  %-10s %8s %8s\n", "block", "T [C]", "P [W]");
    for (std::size_t j = 0; j < design.blocks.size(); ++j)
      std::printf("  %-10s %8.1f %8.2f\n", design.blocks[j].name.c_str(),
                  profile.block_temps_c[j], power.block_watts[j]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Fig. 1 reproduction: on-chip temperature profiles.\n\n");
  analyze(chip::make_ev6_design(),
          "(a) EV6-like alpha processor (design C6):");
  analyze(chip::make_manycore_design(8, 0.25),
          "(b) many-core design, 25% of cores active:");
  std::printf(
      "Paper reference: hot spots occupy a small region with ~30 C\n"
      "difference from inactive regions.\n");
  return 0;
}
