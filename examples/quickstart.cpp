// Quickstart: statistical full-chip OBD reliability analysis in ~40 lines.
//
// Builds a small synthetic design, runs the Wattch-like power model and the
// HotSpot-like thermal solver to get per-block temperatures, assembles the
// reliability problem, and prints ppm lifetimes from the fast statistical
// method next to the traditional guard-band estimate.
#include <cstdio>

#include "chip/design.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/lifetime.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;

  // 1. A design: 50K devices in 8 functional blocks on a 6x6 mm die.
  const chip::Design design = chip::make_benchmark(1);

  // 2. Temperature profile: power estimation + steady-state thermal solve.
  const thermal::ThermalProfile profile =
      thermal::power_thermal_fixed_point(design, power::PowerParams{});
  std::printf("Design %s: %zu devices, %zu blocks, die %.0fx%.0f mm\n",
              design.name.c_str(), design.total_devices(),
              design.blocks.size(), design.width, design.height);
  std::printf("Thermal profile: %.1f .. %.1f C\n\n", profile.min_c(),
              profile.max_c());

  // 3. Reliability problem: thickness variation model (Table II defaults:
  //    2.2 nm nominal, 4% 3-sigma, 50/25/25 split) + device Weibull model.
  const core::AnalyticReliabilityModel device_model;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, device_model, profile.block_temps_c,
      /*vdd=*/1.2);

  // 4. Analyze: the paper's fast statistical method vs the guard band.
  const core::AnalyticAnalyzer statistical(problem);
  const core::GuardBandAnalyzer guard(problem);

  const double year = 365.25 * 24 * 3600;
  for (const double target :
       {core::kOneFaultPerMillion, core::kTenFaultsPerMillion}) {
    const double t_stat = statistical.lifetime_at(target);
    const double t_guard = guard.lifetime_at(target);
    std::printf("%4.0f-fault-per-million lifetime:\n", target * 1e6);
    std::printf("  statistical (st_fast): %8.2f years\n", t_stat / year);
    std::printf("  guard-band  (corner) : %8.2f years  (%.0f%% pessimistic)\n",
                t_guard / year, 100.0 * (1.0 - t_guard / t_stat));
  }

  // 5. A point on the reliability curve.
  const double ten_years = 10.0 * year;
  std::printf("\nFailure probability at 10 years: %.3g\n",
              statistical.failure_probability(ten_years));
  return 0;
}
