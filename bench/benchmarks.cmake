# Benchmark targets, included from the top-level CMakeLists so that
# ${CMAKE_BINARY_DIR}/bench contains only executables (the reproduction
# workflow runs `for b in build/bench/*; do $b; done`).
function(obdrel_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE obdrel)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

obdrel_add_bench(table3_accuracy_runtime)
obdrel_add_bench(table4_correlation_sweep)
obdrel_add_bench(table5_grid_resolution)
obdrel_add_bench(fig1_thermal_profiles)
obdrel_add_bench(fig3_sbd_hbd_trace)
obdrel_add_bench(fig4_blod_gaussianity)
obdrel_add_bench(fig6_7_uv_independence)
obdrel_add_bench(fig8_quadform_cdf)
obdrel_add_bench(fig10_failure_curves)
obdrel_add_bench(parallel_scaling)
obdrel_add_bench(hot_path_scaling)
obdrel_add_bench(simd_kernels)
obdrel_add_bench(fleet_sweep)
obdrel_add_bench(serve_latency)
obdrel_add_bench(mech_overhead)
obdrel_add_bench(incremental_step)
obdrel_add_bench(surrogate_eval)

# Ablation studies of the design choices called out in DESIGN.md.
obdrel_add_bench(ablation_quadrature)
obdrel_add_bench(ablation_correlation_model)
obdrel_add_bench(ablation_pc_truncation)
obdrel_add_bench(ablation_breakdown_tolerance)
obdrel_add_bench(ablation_drm_policy)

add_executable(micro_kernels ${CMAKE_SOURCE_DIR}/bench/micro_kernels.cpp)
target_link_libraries(micro_kernels PRIVATE obdrel benchmark::benchmark)
set_target_properties(micro_kernels PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
