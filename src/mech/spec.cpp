#include "mech/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "common/config.hpp"
#include "common/error.hpp"

namespace obd::mech {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string tok;
  std::istringstream in(s);
  while (std::getline(in, tok, sep)) out.push_back(trim(tok));
  if (!s.empty() && s.back() == sep) out.emplace_back();
  return out;
}

void append_params(std::string* out, const char* name,
                   const MechanismParams& p) {
  std::ostringstream os;
  os << ';' << name << '=' << p.t50_years << ':' << p.sigma << ':' << p.ea_ev
     << ':' << p.gamma_v << ':' << p.activity_exp;
  *out += os.str();
}

MechanismParams parse_params(const Config& cfg, const std::string& prefix,
                             MechanismParams defaults) {
  MechanismParams p = defaults;
  p.t50_years = cfg.get_double(prefix + "_t50_years", p.t50_years);
  p.sigma = cfg.get_double(prefix + "_sigma", p.sigma);
  p.ea_ev = cfg.get_double(prefix + "_ea_ev", p.ea_ev);
  p.gamma_v = cfg.get_double(prefix + "_gamma_v", p.gamma_v);
  p.activity_exp = cfg.get_double(prefix + "_activity_exp", p.activity_exp);
  require(p.t50_years > 0.0, ErrorCode::kConfig,
          "config key '" + prefix + "_t50_years': must be positive");
  require(p.sigma > 0.0, ErrorCode::kConfig,
          "config key '" + prefix + "_sigma': must be positive");
  return p;
}

std::size_t parse_spare_count(const std::string& group,
                              const std::string& raw) {
  const std::string tok = trim(raw);
  require(!tok.empty() &&
              std::all_of(tok.begin(), tok.end(),
                          [](char c) {
                            return std::isdigit(static_cast<unsigned char>(c));
                          }),
          ErrorCode::kConfig,
          "config key 'redundancy': group '" + group +
              "': spare count '" + raw + "' is not a non-negative integer");
  std::size_t value = 0;
  for (char c : tok) {
    value = value * 10 + static_cast<std::size_t>(c - '0');
    require(value <= 4096, ErrorCode::kConfig,
            "config key 'redundancy': group '" + group +
                "': spare count is absurdly large");
  }
  return value;
}

}  // namespace

std::string MechanismSpec::canonical() const {
  std::string s = "oxide";
  if (nbti) s += ",nbti";
  if (em) s += ",em";
  if (hci) s += ",hci";
  if (seed_equivalent()) return s;
  if (extra_count() > 0) {
    std::ostringstream refs;
    refs << ";tref=" << tref_c << ";vref=" << vref;
    s += refs.str();
    if (nbti) append_params(&s, "nbti", nbti_params);
    if (em) append_params(&s, "em", em_params);
    if (hci) append_params(&s, "hci", hci_params);
  }
  if (!redundancy.empty()) {
    s += ";red=";
    for (std::size_t i = 0; i < redundancy.size(); ++i) {
      const SpareGroup& g = redundancy[i];
      if (i > 0) s += ',';
      s += g.name + ':';
      for (std::size_t m = 0; m < g.members.size(); ++m) {
        if (m > 0) s += '+';
        s += g.members[m];
      }
      s += ':' + std::to_string(g.spares);
    }
  }
  return s;
}

MechanismSpec parse_spec(const Config& cfg) {
  MechanismSpec spec;

  const std::string raw = cfg.get_string("mechanisms", "oxide");
  spec.oxide = false;
  for (const std::string& tok : split(raw, ',')) {
    if (tok.empty()) {
      throw Error("config key 'mechanisms': empty mechanism name in '" + raw +
                      "'",
                  ErrorCode::kConfig);
    }
    if (tok == "oxide") {
      spec.oxide = true;
    } else if (tok == "nbti") {
      spec.nbti = true;
    } else if (tok == "em") {
      spec.em = true;
    } else if (tok == "hci") {
      spec.hci = true;
    } else {
      throw Error("config key 'mechanisms': unknown mechanism '" + tok +
                      "' (expected oxide, nbti, em, hci)",
                  ErrorCode::kConfig);
    }
  }
  require(spec.oxide, ErrorCode::kConfig,
          "config key 'mechanisms': the oxide base model must be listed "
          "(it is the paper's reference mechanism and cannot be disabled)");

  spec.tref_c = cfg.get_double("mech_tref_c", spec.tref_c);
  spec.vref = cfg.get_double("mech_vref", spec.vref);
  require(spec.tref_c > -273.15, ErrorCode::kConfig,
          "config key 'mech_tref_c': below absolute zero");
  require(spec.vref > 0.0, ErrorCode::kConfig,
          "config key 'mech_vref': must be positive");

  spec.nbti_params = parse_params(cfg, "nbti", spec.nbti_params);
  spec.em_params = parse_params(cfg, "em", spec.em_params);
  spec.hci_params = parse_params(cfg, "hci", spec.hci_params);

  const std::string red = trim(cfg.get_string("redundancy", ""));
  if (!red.empty()) {
    for (const std::string& entry : split(red, ',')) {
      const std::vector<std::string> parts = split(entry, ':');
      require(parts.size() == 3, ErrorCode::kConfig,
              "config key 'redundancy': entry '" + entry +
                  "' is not of the form group:blk1+blk2:spares");
      SpareGroup g;
      g.name = parts[0];
      require(!g.name.empty(), ErrorCode::kConfig,
              "config key 'redundancy': empty group name in '" + entry + "'");
      for (const std::string& m : split(parts[1], '+')) {
        require(!m.empty(), ErrorCode::kConfig,
                "config key 'redundancy': group '" + g.name +
                    "': empty member name");
        g.members.push_back(m);
      }
      require(!g.members.empty(), ErrorCode::kConfig,
              "config key 'redundancy': group '" + g.name + "': no members");
      g.spares = parse_spare_count(g.name, parts[2]);
      require(g.spares < g.members.size(), ErrorCode::kConfig,
              "config key 'redundancy': group '" + g.name +
                  "': spares must be < member count");
      spec.redundancy.push_back(std::move(g));
    }
  }
  return spec;
}

}  // namespace obd::mech
