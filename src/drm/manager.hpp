// Dynamic reliability management (DRM) — the "reliability management" of
// the DATE'10 title.
//
// The paper's hybrid look-up method exists so reliability can be evaluated
// "very fast" inside "a dynamic system for reliability monitoring"
// (Section IV-E). This module closes that loop: a run-time controller that
//
//   1. tracks each block's consumed OBD damage with an effective-age
//      recursion over the precomputed hybrid tables (exact for the
//      expected per-block failure contribution under piecewise-constant
//      conditions — the standard cumulative-exposure model),
//   2. projects, for every DVFS operating point, the damage the next
//      control interval would add (power model -> block-mode thermal
//      solve -> alpha(T)/b(T) -> table lookup), and
//   3. picks the fastest operating point that keeps the chip on (or under)
//      a linear end-of-life failure-budget trajectory.
//
// Compared against a static worst-case policy, the budget-based controller
// recovers the performance the guard band leaves on the table whenever the
// workload is not worst-case — the management counterpart of the paper's
// analysis-time claim.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/chip_state.hpp"
#include "core/device_model.hpp"
#include "core/hybrid.hpp"
#include "core/problem.hpp"
#include "mech/mechanism.hpp"
#include "thermal/solver.hpp"

namespace obd::drm {

/// One rung of the DVFS ladder.
struct OperatingPoint {
  std::string name;
  double vdd = 1.2;        ///< supply [V]
  double frequency = 2e9;  ///< clock [Hz]
};

/// Controller configuration.
struct DrmOptions {
  double lifetime_target_s = 10.0 * 365.25 * 86400.0;
  /// End-of-life chip failure budget (e.g. 10 faults per million).
  double failure_budget = 1e-5;
  /// Control interval: wall-clock time represented by one step() call.
  double control_interval_s = 30.0 * 86400.0;  ///< one month
  thermal::ThermalParams thermal{};
  /// Workload activity above this is treated as sensor noise and clamped
  /// (with a diagnostic) rather than rejected — the control loop must keep
  /// running on bad telemetry.
  double max_activity = 2.0;
  /// Hot-corner temperature [C] assumed when the per-rung thermal solve
  /// fails and the manager falls back to guard-band conditions. The max of
  /// this and the problem's worst block temperature is used.
  double fallback_temp_c = 110.0;
  /// Watchdog deadline for one step() [ms]; 0 disables it. When the rung
  /// search overruns the deadline, the remaining rungs are not evaluated:
  /// the step commits the previous step's rung at guard-band conditions
  /// (cheap — no thermal solve) with a `drm.deadline` diagnostic, so a slow
  /// thermal solve can never stall the control loop past its interval.
  double step_deadline_ms = 0.0;
};

/// Outcome of one control step.
struct DrmStep {
  std::size_t op_index = 0;       ///< chosen ladder rung
  double performance = 0.0;       ///< frequency * achieved activity [Hz]
  double damage = 0.0;            ///< total consumed failure probability
  double budget_line = 0.0;       ///< allowed damage at this point in life
  double max_temp_c = 0.0;        ///< hottest block under the chosen point
  /// True when this step degraded: the workload sample was clamped or a
  /// thermal solve failed and guard-band fallback conditions were used.
  bool degraded = false;
  /// Blocks whose committed operating state (alpha, b, temperature,
  /// activity — bit compare) changed relative to the previous step: the
  /// dirty set an incremental consumer of this step would refresh.
  std::size_t dirty_blocks = 0;
};

/// Budget-based dynamic reliability manager.
class ReliabilityManager {
 public:
  /// `problem` supplies the design geometry and BLOD statistics (its own
  /// temperatures are irrelevant — the manager recomputes thermals per
  /// operating point); `ladder` must be sorted from slowest to fastest.
  ReliabilityManager(const core::ReliabilityProblem& problem,
                     const core::DeviceReliabilityModel& model,
                     std::vector<OperatingPoint> ladder,
                     const DrmOptions& options = {});

  /// Advances one control interval with the workload demanding
  /// `workload_activity` (scale on each block's nominal activity, in
  /// [0, 1+]): evaluates every rung, picks the fastest one whose projected
  /// damage stays under the budget trajectory (falling back to the slowest
  /// rung when none does), and commits its damage.
  ///
  /// Robustness contract: step() does not propagate numerical failures out
  /// of the control loop. NaN/negative/implausible activity samples are
  /// clamped (diagnostic + DrmStep::degraded), and rungs whose thermal
  /// evaluation fails are skipped — down to guard-band hot-corner
  /// conditions on the slowest rung if necessary. In strict mode
  /// (obd::set_strict_mode) every such repair throws Error(kDegraded)
  /// instead.
  DrmStep step(double workload_activity);

  /// Like step() but with a fixed rung (static policies / baselines).
  DrmStep step_fixed(std::size_t op_index, double workload_activity);

  /// Total consumed failure probability so far.
  [[nodiscard]] double damage() const;

  /// Per-block consumed oxide failure probability (aligned with
  /// problem.blocks()).
  [[nodiscard]] const std::vector<double>& block_damage() const {
    return block_damage_;
  }

  /// Per-mechanism per-block aging damage, mechanism-major (aligned with
  /// problem.mechanisms().extras() x problem.blocks()). Empty when no
  /// aging mechanisms are enabled.
  [[nodiscard]] const std::vector<double>& extra_damage() const {
    return extra_damage_;
  }

  /// Full damage state a checkpoint must persist: the oxide per-block
  /// vector followed by the mechanism-major aging damage. With the
  /// default spec this is exactly block_damage(), so seed-era snapshots
  /// and journals keep their byte layout.
  [[nodiscard]] std::vector<double> damage_state() const;

  /// Number of entries in damage_state().
  [[nodiscard]] std::size_t state_size() const {
    return block_damage_.size() + extra_damage_.size();
  }

  /// Rung committed by the most recent step (slowest rung before any step
  /// has run) — the decision the watchdog falls back to.
  [[nodiscard]] std::size_t last_op_index() const { return last_op_index_; }

  /// Restores accumulated state from a checkpoint: the damage_state()
  /// vector (state_size() entries), elapsed lifetime, and the last
  /// committed rung. Validates everything (sizes, finiteness,
  /// non-negativity, rung range) and throws Error(kInvalidInput) on any
  /// violation — a corrupt checkpoint must be rejected here, not silently
  /// believed.
  void restore_state(const std::vector<double>& damage_state,
                     double elapsed_s, std::size_t last_op_index);

  /// Elapsed managed lifetime [s].
  [[nodiscard]] double elapsed_s() const { return elapsed_s_; }

  /// Allowed damage at elapsed time t (linear trajectory to the budget).
  [[nodiscard]] double budget_line(double t) const;

  [[nodiscard]] const std::vector<OperatingPoint>& ladder() const {
    return ladder_;
  }

  [[nodiscard]] const DrmOptions& options() const { return options_; }

  /// Cumulative DrmStep::dirty_blocks across all steps — the numerator of
  /// the `step.dirty_blocks` diagnostics stat.
  [[nodiscard]] std::uint64_t dirty_blocks_total() const {
    return dirty_blocks_total_;
  }

  /// Per-rung conditions-memo counters: a hit skips the two thermal
  /// solves and power estimates of a rung evaluation entirely.
  [[nodiscard]] std::uint64_t conditions_cache_hits() const {
    return conditions_hits_;
  }
  [[nodiscard]] std::uint64_t conditions_cache_misses() const {
    return conditions_misses_;
  }

 private:
  /// Per-block operating state for a rung at the given workload: oxide
  /// Weibull parameters plus the temperatures/activities the aging
  /// mechanisms accelerate with.
  struct Conditions {
    std::vector<double> alphas;
    std::vector<double> bs;
    std::vector<double> temps_c;
    std::vector<double> activities;
    double vdd = 0.0;
    double max_temp_c = 0.0;
  };
  [[nodiscard]] Conditions conditions_for(const OperatingPoint& op,
                                          double workload_activity) const;

  /// conditions_for with a per-rung memo keyed on the activity bit
  /// pattern: a trace that repeats an activity level (traces quantize;
  /// idle/phase plateaus dominate real workloads) reuses the thermal
  /// solve instead of re-running it. The `drm.thermal` fault site is
  /// consulted before the memo so injected faults fire on hits too.
  [[nodiscard]] Conditions cached_conditions_for(std::size_t rung,
                                                 double workload_activity);

  /// Clamps NaN/negative/implausible workload samples into [0, max_activity]
  /// (NaN maps to full activity — the guard-band-safe reading), recording a
  /// diagnostic and setting *degraded when a repair was needed.
  [[nodiscard]] double sanitize_activity(double workload_activity,
                                         bool* degraded) const;

  /// Guard-band fallback conditions for `op`: every block at the hot-corner
  /// temperature. Used when the per-rung thermal solve fails — damage keeps
  /// accruing at the pessimistic rate instead of the loop dying.
  [[nodiscard]] Conditions guardband_conditions(const OperatingPoint& op)
      const;

  /// Damage added to block j by spending `dt` under (alpha, b), given its
  /// already-consumed damage d_j (effective-age recursion on the LUT).
  [[nodiscard]] double advanced_damage(std::size_t j, double d_j,
                                       double alpha, double b,
                                       double dt) const;

  /// Same effective-age recursion for one aging mechanism: invert the
  /// mechanism CDF at the consumed damage under the new conditions, then
  /// advance by dt. Damage never decreases.
  [[nodiscard]] double advanced_extra_damage(
      const mech::FailureMechanism& mechanism, std::size_t j, double d,
      const mech::OperatingConditions& c, double dt) const;

  /// Projects every aging mechanism's damage over `dt` under `c` into
  /// `out` (mechanism-major, sized like extra_damage_; typically an arena
  /// span) and returns the projected sum. No-op returning 0 when no
  /// mechanisms are enabled.
  double project_extras(const Conditions& c, double dt,
                        std::span<double> out) const;

  /// Feeds the committed conditions into the dirty-tracking ChipState
  /// (bit-comparing setters) and returns how many blocks actually
  /// changed since the previous commit.
  std::size_t commit_state(const Conditions& c);

  const core::ReliabilityProblem* problem_;   // non-owning
  const core::DeviceReliabilityModel* model_; // non-owning
  std::vector<OperatingPoint> ladder_;
  DrmOptions options_;
  core::HybridEvaluator lut_;
  std::vector<double> block_damage_;
  /// Mechanism-major aging damage: extra_damage_[m * n_blocks + j].
  std::vector<double> extra_damage_;
  double elapsed_s_ = 0.0;
  std::size_t last_op_index_ = 0;
  /// Committed per-block operating state, used as the bit-exact delta
  /// detector behind DrmStep::dirty_blocks (this manager is the state's
  /// single dirty-set consumer).
  core::ChipState state_;
  /// Per-rung Conditions memo, keyed on the sanitized activity bits.
  /// Never cleared mid-step (returned Conditions may alias an entry);
  /// capped per rung so adversarial activity streams cannot grow it.
  std::vector<std::map<std::uint64_t, Conditions>> conditions_memo_;
  std::uint64_t conditions_hits_ = 0;
  std::uint64_t conditions_misses_ = 0;
  std::uint64_t dirty_blocks_total_ = 0;
};

}  // namespace obd::drm
