#include "fleet/shard.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/checkpoint.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/parallel.hpp"

namespace obd::fleet {
namespace {

// Exact round-trip formatting for doubles (hex floats survive text I/O
// bit-for-bit) — same convention as the DRM checkpoint schema.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string hex_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Strict token parsers: return false on any malformed field.
bool parse_u64(const std::string& tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 0);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_hex_u64(const std::string& tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 16);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_f64(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &end);
  if (errno == ERANGE || end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

std::string shard_file(const std::string& dir, std::uint64_t shard,
                       const char* suffix) {
  return dir + "/shard-" + std::to_string(shard) + suffix;
}

const char* sampling_name(core::DeviceSampling s) {
  return s == core::DeviceSampling::kBinned ? "binned" : "per_device";
}

}  // namespace

std::uint64_t fleet_fingerprint(const FleetSpec& spec) {
  std::ostringstream os;
  os << "fleet v" << kShardSchemaVersion << "\nchips " << spec.chips
     << "\nchunk " << kChunkChips << "\nseed " << spec.seed << "\nbins "
     << spec.thickness_bins << "\nsampling " << sampling_name(spec.sampling)
     << "\nts " << spec.ts.size();
  for (const double t : spec.ts) os << ' ' << fmt_double(t);
  os << "\nkey " << spec.problem_key << "\n";
  return fnv1a(os.str());
}

std::uint64_t chunk_count(const FleetSpec& spec) {
  return (spec.chips + kChunkChips - 1) / kChunkChips;
}

std::uint64_t chunk_chip_begin(const FleetSpec& spec, std::uint64_t c) {
  (void)spec;
  return c * kChunkChips;
}

std::uint64_t chunk_chip_end(const FleetSpec& spec, std::uint64_t c) {
  return std::min(spec.chips, (c + 1) * kChunkChips);
}

std::vector<ChunkRange> partition_chunks(std::uint64_t total_chunks,
                                         std::uint64_t shards) {
  require(shards >= 1, ErrorCode::kInvalidInput,
          "partition_chunks: need at least one shard");
  std::vector<ChunkRange> out(shards);
  const std::uint64_t base = total_chunks / shards;
  const std::uint64_t extra = total_chunks % shards;
  std::uint64_t begin = 0;
  for (std::uint64_t k = 0; k < shards; ++k) {
    const std::uint64_t size = base + (k < extra ? 1 : 0);
    out[k] = ChunkRange{begin, begin + size};
    begin += size;
  }
  return out;
}

std::string encode_chunk_record(std::uint64_t fingerprint,
                                const ChunkResult& r) {
  std::ostringstream os;
  os << "chunk " << r.chunk << " chips " << r.chips << " fp "
     << hex_u64(fingerprint) << " nt " << r.sum_f.size();
  for (const double v : r.sum_f) os << ' ' << fmt_double(v);
  for (const double v : r.sum_f2) os << ' ' << fmt_double(v);
  return os.str();
}

bool decode_chunk_record(const std::string& payload, std::uint64_t fingerprint,
                         std::size_t nt, ChunkResult* out) {
  if (fault::should_fire(fault::site::kFleetShardCrc)) return false;
  std::istringstream is(payload);
  std::string kw, tok;
  ChunkResult r;
  std::uint64_t fp = 0;
  std::uint64_t rec_nt = 0;
  if (!(is >> kw >> tok) || kw != "chunk" || !parse_u64(tok, &r.chunk))
    return false;
  if (!(is >> kw >> tok) || kw != "chips" || !parse_u64(tok, &r.chips))
    return false;
  if (!(is >> kw >> tok) || kw != "fp" || !parse_hex_u64(tok, &fp))
    return false;
  if (!(is >> kw >> tok) || kw != "nt" || !parse_u64(tok, &rec_nt))
    return false;
  if (fp != fingerprint || rec_nt != nt) return false;
  r.sum_f.resize(nt);
  r.sum_f2.resize(nt);
  for (double& v : r.sum_f)
    if (!(is >> tok) || !parse_f64(tok, &v)) return false;
  for (double& v : r.sum_f2)
    if (!(is >> tok) || !parse_f64(tok, &v)) return false;
  if (is >> tok) return false;  // trailing garbage
  *out = std::move(r);
  return true;
}

std::string journal_path(const std::string& dir, std::uint64_t shard) {
  return shard_file(dir, shard, ".journal");
}
std::string done_path(const std::string& dir, std::uint64_t shard) {
  return shard_file(dir, shard, ".done");
}
std::string heartbeat_path(const std::string& dir, std::uint64_t shard) {
  return shard_file(dir, shard, ".hb");
}
std::string log_path(const std::string& dir, std::uint64_t shard) {
  return shard_file(dir, shard, ".log");
}

bool write_heartbeat(const std::string& path, const Heartbeat& hb) {
  if (fault::should_fire(fault::site::kFleetHeartbeat)) return false;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const int n = std::fprintf(f, "hb %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                             hb.pid, hb.counter, hb.chunks_done);
  const bool ok = (n > 0) && (std::fclose(f) == 0);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Heartbeat> read_heartbeat(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  Heartbeat hb;
  const int n = std::fscanf(f, "hb %" SCNu64 " %" SCNu64 " %" SCNu64, &hb.pid,
                            &hb.counter, &hb.chunks_done);
  std::fclose(f);
  if (n != 3) return std::nullopt;
  return hb;
}

namespace {

// Validates a decoded record against the spec's chunk geometry.
bool chunk_geometry_ok(const FleetSpec& spec, const ChunkResult& r) {
  return r.chunk < chunk_count(spec) &&
         r.chips == chunk_chip_end(spec, r.chunk) -
                        chunk_chip_begin(spec, r.chunk);
}

}  // namespace

std::map<std::uint64_t, ChunkResult> load_shard_chunks(const std::string& dir,
                                                       std::uint64_t shard,
                                                       const FleetSpec& spec) {
  const std::uint64_t fp = fleet_fingerprint(spec);
  const std::size_t nt = spec.ts.size();
  std::map<std::uint64_t, ChunkResult> out;

  // The done snapshot is authoritative when it decodes in full — it was
  // written atomically after the shard finished. Any defect (foreign
  // fingerprint, torn line, injected fleet.shard_crc) demotes the reader
  // to the journal, whose per-record CRC frames tolerate partial damage.
  try {
    const ckpt::Snapshot snap = ckpt::read_snapshot(done_path(dir, shard));
    if (snap.version == kShardSchemaVersion) {
      std::map<std::uint64_t, ChunkResult> done;
      bool ok = true;
      std::istringstream is(snap.payload);
      std::string line;
      while (ok && std::getline(is, line)) {
        if (line.empty()) continue;
        ChunkResult r;
        ok = decode_chunk_record(line, fp, nt, &r) &&
             chunk_geometry_ok(spec, r);
        if (ok) done[r.chunk] = std::move(r);
      }
      if (ok && !done.empty()) return done;
    }
  } catch (const Error&) {
    // Missing or corrupt snapshot: fall through to the journal.
  }

  const ckpt::JournalReadResult jr = ckpt::read_journal(journal_path(dir, shard));
  for (const std::string& rec : jr.records) {
    ChunkResult r;
    if (decode_chunk_record(rec, fp, nt, &r) && chunk_geometry_ok(spec, r))
      out[r.chunk] = std::move(r);
  }
  return out;
}

void run_worker(const core::ReliabilityProblem& problem, const FleetSpec& spec,
                const WorkerOptions& opts) {
  require(opts.shards >= 1 && opts.shard < opts.shards,
          ErrorCode::kInvalidInput, "run_worker: shard index out of range");
  require(!spec.ts.empty(), ErrorCode::kInvalidInput,
          "run_worker: empty sweep");
  const std::uint64_t fp = fleet_fingerprint(spec);
  const ChunkRange range =
      partition_chunks(chunk_count(spec), opts.shards)[opts.shard];

  // A SIGKILLed predecessor of this shard leaves `shard-<k>.hb.tmp`
  // behind. Sweep only this shard's prefix: sibling workers own theirs
  // and may be mid-write right now.
  ckpt::sweep_stale_tmp(opts.dir,
                        "shard-" + std::to_string(opts.shard) + ".",
                        "fleet");

  // Resume: every usable record for a chunk in this shard's range is kept;
  // pending chunks are recomputed. Foreign/corrupt records are invisible
  // here and to every other reader, so there is nothing to repair.
  std::map<std::uint64_t, ChunkResult> completed;
  for (auto& [c, r] : load_shard_chunks(opts.dir, opts.shard, spec))
    if (c >= range.begin && c < range.end) completed[c] = std::move(r);
  std::vector<std::uint64_t> pending;
  for (std::uint64_t c = range.begin; c < range.end; ++c)
    if (completed.find(c) == completed.end()) pending.push_back(c);

  // Heartbeat beacon. Failures do not stop the sweep — the journal, not
  // the heartbeat, carries the durable state.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> chunks_done{completed.size()};
  std::atomic<std::uint64_t> beat_failures{0};
  const std::string hb_path = heartbeat_path(opts.dir, opts.shard);
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  std::thread beat([&] {
    std::uint64_t counter = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!write_heartbeat(hb_path, Heartbeat{pid, ++counter,
                                              chunks_done.load()}))
        beat_failures.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.heartbeat_ms));
    }
  });

  core::MonteCarloOptions mco;
  mco.thickness_bins = spec.thickness_bins;
  mco.seed = spec.seed;
  mco.sampling = spec.sampling;
  const core::MonteCarloAnalyzer mc =
      core::MonteCarloAnalyzer::streaming(problem, mco);

  // One pool task per chunk: the thread count can regroup *which* worker
  // thread computes a chunk but never how a chunk accumulates internally.
  // Journal appends are serialized; each record is synced before the chunk
  // counts as done, so a SIGKILL at any instant loses at most in-flight
  // chunks, never recorded ones.
  std::mutex mu;
  ckpt::JournalWriter journal(journal_path(opts.dir, opts.shard),
                              /*truncate=*/completed.empty());
  par::parallel_for(0, pending.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::uint64_t c = pending[i];
      ChunkResult r;
      r.chunk = c;
      core::MonteCarloAnalyzer::RangePartial p = mc.accumulate_chip_range(
          spec.ts, chunk_chip_begin(spec, c), chunk_chip_end(spec, c));
      r.chips = p.chips;
      r.sum_f = std::move(p.sum_f);
      r.sum_f2 = std::move(p.sum_f2);
      const std::lock_guard<std::mutex> lock(mu);
      journal.append(encode_chunk_record(fp, r));
      if (opts.sync_journal) journal.sync();
      completed[c] = std::move(r);
      chunks_done.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Publish the complete record set atomically. The done file is a pure
  // cache of the journal — supervisors fall back transparently.
  std::ostringstream payload;
  for (std::uint64_t c = range.begin; c < range.end; ++c) {
    const auto it = completed.find(c);
    require(it != completed.end(), "run_worker: chunk missing after sweep");
    payload << encode_chunk_record(fp, it->second) << '\n';
  }
  ckpt::write_snapshot_atomic(done_path(opts.dir, opts.shard),
                              kShardSchemaVersion, payload.str());

  stop.store(true, std::memory_order_relaxed);
  beat.join();
  if (beat_failures.load() > 0)
    diagnostics().warn("fleet.heartbeat",
                       "shard " + std::to_string(opts.shard) + ": " +
                           std::to_string(beat_failures.load()) +
                           " heartbeat write(s) failed; liveness watchdog "
                           "may restart this worker spuriously");
}

FleetReport merge_chunks(const FleetSpec& spec,
                         const std::map<std::uint64_t, ChunkResult>& chunks) {
  const std::size_t nt = spec.ts.size();
  FleetReport rep;
  rep.total_chips = spec.chips;
  rep.ts = spec.ts;
  rep.failure.assign(nt, 0.0);
  rep.std_error.assign(nt, 0.0);
  std::vector<double> sum(nt, 0.0);
  std::vector<double> sum2(nt, 0.0);
  // std::map iterates in ascending chunk order — the merge order is a
  // property of the chunk set, not of which shard produced which chunk.
  for (const auto& [c, r] : chunks) {
    rep.covered_chips += r.chips;
    for (std::size_t ti = 0; ti < nt; ++ti) {
      sum[ti] += r.sum_f[ti];
      sum2[ti] += r.sum_f2[ti];
    }
  }
  rep.missing_chunks = chunk_count(spec) - chunks.size();
  const double n = static_cast<double>(rep.covered_chips);
  for (std::size_t ti = 0; ti < nt; ++ti) {
    if (rep.covered_chips == 0) {
      rep.failure[ti] = std::numeric_limits<double>::quiet_NaN();
      rep.std_error[ti] = std::numeric_limits<double>::quiet_NaN();
      continue;
    }
    rep.failure[ti] = sum[ti] / n;
    const double var =
        (rep.covered_chips < 2)
            ? 0.0
            : std::max(0.0, (sum2[ti] - sum[ti] * sum[ti] / n) / (n - 1.0));
    rep.std_error[ti] = std::sqrt(var / n);
  }
  return rep;
}

std::string render_report(const FleetReport& report) {
  std::ostringstream os;
  char buf[96];
  os << "# obdrel fleet report\n";
  os << "chips " << report.total_chips << '\n';
  os << "covered " << report.covered_chips << '\n';
  os << "missing_chunks " << report.missing_chunks << '\n';
  os << "points " << report.ts.size() << '\n';
  os << "t_seconds,failure_probability,std_error\n";
  for (std::size_t ti = 0; ti < report.ts.size(); ++ti) {
    std::snprintf(buf, sizeof buf, "%.17g,%.17g,%.17g\n", report.ts[ti],
                  report.failure[ti], report.std_error[ti]);
    os << buf;
  }
  return os.str();
}

}  // namespace obd::fleet
