#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace obd {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Config Config::parse(std::istream& in) {
  if (fault::should_fire(fault::site::kConfigParse))
    throw Error("Config: injected parse fault", ErrorCode::kConfig);
  Config cfg;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;

    std::string key;
    std::string value;
    const std::size_t eq = stripped.find('=');
    if (eq != std::string::npos) {
      key = trim(stripped.substr(0, eq));
      value = trim(stripped.substr(eq + 1));
    } else {
      const std::size_t ws = stripped.find_first_of(" \t");
      require(ws != std::string::npos, ErrorCode::kConfig,
              "Config: line " + std::to_string(line_no) +
                  ": expected 'key value' or 'key = value'");
      key = trim(stripped.substr(0, ws));
      value = trim(stripped.substr(ws + 1));
    }
    require(!key.empty(), ErrorCode::kConfig,
            "Config: line " + std::to_string(line_no) + ": empty key");
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), ErrorCode::kIo, "Config: cannot open '" + path + "'");
  return parse(in);
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  require(it != values_.end(), ErrorCode::kConfig,
          "Config: missing key '" + key + "'");
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return (it != values_.end()) ? it->second : fallback;
}

double Config::get_double(const std::string& key) const {
  const std::string raw = get_string(key);
  try {
    std::size_t pos = 0;
    const double v = std::stod(raw, &pos);
    require(trim(raw.substr(pos)).empty(), ErrorCode::kConfig,
            "Config: key '" + key + "': trailing characters");
    require(std::isfinite(v), ErrorCode::kConfig,
            "Config: key '" + key + "': must be finite, got '" + raw + "'");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("Config: key '" + key + "': cannot parse '" + raw + "'",
                ErrorCode::kConfig);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

long long Config::get_int(const std::string& key) const {
  const std::string raw = get_string(key);
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(raw, &pos);
    require(trim(raw.substr(pos)).empty(), ErrorCode::kConfig,
            "Config: key '" + key + "': trailing characters");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("Config: key '" + key + "': cannot parse '" + raw + "'",
                ErrorCode::kConfig);
  }
}

long long Config::get_int(const std::string& key, long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

std::size_t Config::get_count(const std::string& key,
                              std::size_t fallback) const {
  if (!has(key)) return fallback;
  const long long v = get_int(key);
  require(v > 0, ErrorCode::kInvalidInput,
          "Config: key '" + key + "': must be a positive count, got " +
              std::to_string(v));
  return static_cast<std::size_t>(v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const std::string v = lowercase(get_string(key));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("Config: key '" + key + "': not a boolean: '" + v + "'",
              ErrorCode::kConfig);
}

std::vector<double> Config::get_doubles(
    const std::string& key, const std::vector<double>& fallback) const {
  if (!has(key)) return fallback;
  std::istringstream is(get_string(key));
  std::vector<double> out;
  std::string tok;
  while (is >> tok) {
    try {
      std::size_t pos = 0;
      const double v = std::stod(tok, &pos);
      require(pos == tok.size(), ErrorCode::kConfig,
              "Config: key '" + key + "': trailing characters in '" + tok +
                  "'");
      require(std::isfinite(v), ErrorCode::kConfig,
              "Config: key '" + key + "': must be finite, got '" + tok + "'");
      out.push_back(v);
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("Config: key '" + key + "': cannot parse '" + tok + "'",
                  ErrorCode::kConfig);
    }
  }
  require(!out.empty(), ErrorCode::kConfig,
          "Config: key '" + key + "': empty list");
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace obd
