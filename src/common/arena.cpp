#include "common/arena.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/diagnostics.hpp"

namespace obd {
namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_high_water{0};

void record_high_water(std::size_t used) {
  std::uint64_t seen = g_high_water.load(std::memory_order_relaxed);
  while (used > seen && !g_high_water.compare_exchange_weak(
                            seen, used, std::memory_order_relaxed)) {
  }
}

std::string human_bytes(std::uint64_t bytes) {
  std::ostringstream os;
  if (bytes >= 1024 * 1024) {
    os << (bytes / (1024 * 1024)) << " MiB";
  } else if (bytes >= 1024) {
    os << (bytes / 1024) << " KiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace

Arena::Arena(std::size_t initial_bytes) {
  add_chunk(std::max<std::size_t>(initial_bytes, 1024));
}

void Arena::add_chunk(std::size_t min_bytes) {
  const std::size_t prev =
      chunks_.empty() ? 0 : chunks_.back().capacity;
  const std::size_t cap = std::max(min_bytes, prev * 2);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(cap);
  c.capacity = cap;
  chunks_.push_back(std::move(c));
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  // Aligns the absolute address (chunk bases only guarantee the default
  // operator-new alignment).
  const auto aligned_offset = [alignment](const Chunk& ch) {
    const auto base = reinterpret_cast<std::uintptr_t>(ch.data.get());
    const std::uintptr_t cur = base + ch.used;
    const std::uintptr_t up =
        (cur + alignment - 1) & ~static_cast<std::uintptr_t>(alignment - 1);
    return static_cast<std::size_t>(up - base);
  };
  Chunk* c = &chunks_[active_];
  std::size_t offset = aligned_offset(*c);
  if (offset + bytes > c->capacity) {
    // Try the next existing chunk (release() keeps chunks for reuse);
    // otherwise grow. A fresh chunk starts aligned for any power of two
    // up to the allocation granularity of operator new.
    if (active_ + 1 < chunks_.size() &&
        bytes + alignment <= chunks_[active_ + 1].capacity) {
      ++active_;
    } else {
      chunks_.resize(active_ + 1);  // drop smaller stale successors
      add_chunk(bytes + alignment);
      ++active_;
    }
    c = &chunks_[active_];
    offset = aligned_offset(*c);
  }
  c->used = offset + bytes;
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
  const std::size_t resident = used();
  high_water_ = std::max(high_water_, resident);
  record_high_water(resident);
  return c->data.get() + offset;
}

void Arena::release(const Mark& m) {
  for (std::size_t i = m.chunk + 1; i <= active_ && i < chunks_.size(); ++i)
    chunks_[i].used = 0;
  active_ = m.chunk;
  chunks_[active_].used = m.used;
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= active_; ++i) total += chunks_[i].used;
  return total;
}

Arena& step_arena() {
  thread_local Arena arena;
  return arena;
}

ArenaStats arena_stats() {
  ArenaStats s;
  s.allocations = g_allocations.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  s.high_water = g_high_water.load(std::memory_order_relaxed);
  return s;
}

void publish_arena_stats() {
  const ArenaStats s = arena_stats();
  if (s.allocations == 0) return;
  std::ostringstream os;
  os << s.allocations << " bump allocation(s), " << human_bytes(s.bytes)
     << " served, high water " << human_bytes(s.high_water);
  diagnostics().stat("arena.bytes", os.str());
}

}  // namespace obd
