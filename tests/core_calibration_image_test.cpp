// Tests for model calibration, the MC standard-error estimate, and the
// thermal image writers.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "chip/design.hpp"
#include "common/error.hpp"
#include "core/calibration.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "thermal/image.hpp"
#include "thermal/solver.hpp"

namespace obd {
namespace {

TEST(Calibration, RecoversExactModelFromItsOwnTable) {
  const core::AnalyticReliabilityModel truth;
  std::vector<core::ReliabilityTableRow> rows;
  for (double t = 25.0; t <= 125.0; t += 10.0)
    rows.push_back({t, truth.alpha(t, 1.2), truth.b(t, 1.2)});

  const auto fit = core::fit_analytic_model(rows, 100.0);
  // Noise-free data from the model family: near-exact recovery.
  EXPECT_NEAR(fit.params.alpha_ref / truth.params().alpha_ref, 1.0, 1e-6);
  EXPECT_NEAR(fit.params.c1, truth.params().c1, 1.0);
  EXPECT_NEAR(fit.params.c2, truth.params().c2, 400.0);
  EXPECT_NEAR(fit.params.b_ref, truth.params().b_ref, 1e-9);
  EXPECT_NEAR(fit.params.b_temp_slope, truth.params().b_temp_slope, 1e-12);
  EXPECT_LT(fit.log_alpha_rmse, 1e-6);
  EXPECT_LT(fit.b_rmse, 1e-12);
}

TEST(Calibration, FitsNoisyDataWithSmallResiduals) {
  const core::AnalyticReliabilityModel truth;
  stats::Rng rng(9);
  std::vector<core::ReliabilityTableRow> rows;
  for (double t = 30.0; t <= 120.0; t += 7.5) {
    rows.push_back({t, truth.alpha(t, 1.2) * std::exp(rng.normal(0.0, 0.05)),
                    truth.b(t, 1.2) + rng.normal(0.0, 0.002)});
  }
  const auto fit = core::fit_analytic_model(rows, 100.0);
  EXPECT_LT(fit.log_alpha_rmse, 0.1);
  EXPECT_LT(fit.b_rmse, 0.005);
  // Predictions interpolate sensibly.
  const core::AnalyticReliabilityModel fitted(fit.params);
  for (double t : {40.0, 75.0, 110.0})
    EXPECT_NEAR(std::log(fitted.alpha(t, 1.2)),
                std::log(truth.alpha(t, 1.2)), 0.15)
        << "T=" << t;
}

TEST(Calibration, RejectsDegenerateInput) {
  std::vector<core::ReliabilityTableRow> two{{25.0, 1e17, 0.7},
                                             {50.0, 1e16, 0.68}};
  EXPECT_THROW(core::fit_analytic_model(two), Error);
  std::vector<core::ReliabilityTableRow> dup{{25.0, 1e17, 0.7},
                                             {25.0, 1e16, 0.68},
                                             {50.0, 1e15, 0.66}};
  EXPECT_THROW(core::fit_analytic_model(dup), Error);
  std::vector<core::ReliabilityTableRow> neg{{25.0, -1e17, 0.7},
                                             {50.0, 1e16, 0.68},
                                             {75.0, 1e15, 0.66}};
  EXPECT_THROW(core::fit_analytic_model(neg), Error);
}

TEST(McStdError, ShrinksWithSampleCountAndBoundsError) {
  const chip::Design design = chip::make_synthetic_design(
      "M", {.devices = 15000, .block_count = 4, .die_width = 4.0,
            .die_height = 4.0, .seed = 61});
  const core::AnalyticReliabilityModel model;
  const std::vector<double> temps{90.0, 70.0, 80.0, 60.0};
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 8;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, temps, 1.2, opts);

  const core::MonteCarloAnalyzer small(problem, {.chip_samples = 100});
  const core::MonteCarloAnalyzer big(problem,
                                     {.chip_samples = 900, .seed = 2});
  const double t = 3e8;
  // SE scales like 1/sqrt(n): 3x fewer per 9x more samples.
  EXPECT_NEAR(small.failure_std_error(t) / big.failure_std_error(t), 3.0,
              1.5);
  // The two estimates agree within a few joint standard errors.
  const double gap =
      std::fabs(small.failure_probability(t) - big.failure_probability(t));
  const double joint =
      std::hypot(small.failure_std_error(t), big.failure_std_error(t));
  EXPECT_LT(gap, 5.0 * joint);
}

TEST(ThermalImage, WritesWellFormedPgmAndPpm) {
  const chip::Design d = chip::make_benchmark(1);
  const auto power = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 16;
  const auto profile = thermal::solve_thermal(d, power, tp);

  std::ostringstream pgm;
  thermal::write_pgm(pgm, profile, 2);
  const std::string s = pgm.str();
  EXPECT_EQ(s.rfind("P5\n32 32\n255\n", 0), 0u);
  EXPECT_EQ(s.size(), std::string("P5\n32 32\n255\n").size() + 32u * 32u);

  std::ostringstream ppm;
  thermal::write_ppm(ppm, profile, 1);
  const std::string q = ppm.str();
  EXPECT_EQ(q.rfind("P6\n16 16\n255\n", 0), 0u);
  EXPECT_EQ(q.size(), std::string("P6\n16 16\n255\n").size() + 3u * 16u * 16u);
}

TEST(ThermalImage, HotSpotIsBrightest) {
  // Single hot block in a corner: the brightest PGM pixel must fall inside
  // that block's region.
  chip::Design d;
  d.name = "corner";
  d.width = 8.0;
  d.height = 8.0;
  d.blocks.push_back({"hot", {0, 0, 2, 2}, 10, 1.0, chip::UnitKind::kLogic, 0.9});
  d.blocks.push_back({"cold", {2, 0, 6, 2}, 10, 1.0, chip::UnitKind::kCache, 0.02});
  d.blocks.push_back({"rest", {0, 2, 8, 6}, 10, 1.0, chip::UnitKind::kCache, 0.02});
  const auto power = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 16;
  const auto profile = thermal::solve_thermal(d, power, tp);
  std::ostringstream pgm;
  thermal::write_pgm(pgm, profile, 1);
  const std::string s = pgm.str();
  const std::size_t header = std::string("P5\n16 16\n255\n").size();
  std::size_t best = header;
  for (std::size_t i = header; i < s.size(); ++i)
    if (static_cast<unsigned char>(s[i]) >
        static_cast<unsigned char>(s[best]))
      best = i;
  const std::size_t pixel = best - header;
  const std::size_t row = pixel / 16;  // image rows top-down
  const std::size_t col = pixel % 16;
  EXPECT_GE(row, 12u);  // bottom quarter of the image = low die y
  EXPECT_LT(col, 4u);   // left quarter
}

TEST(ThermalImage, RejectsBadArguments) {
  thermal::ThermalProfile empty;
  std::ostringstream os;
  EXPECT_THROW(thermal::write_pgm(os, empty), Error);
}

}  // namespace
}  // namespace obd
