// The `obdrel serve` daemon: an overload-safe, drain-friendly front end
// over the QueryEngine.
//
// Transport is deliberately primitive — newline-framed request lines over
// a unix-domain stream socket (`--socket <path>`), or stdin -> stdout
// (`--stdin`) for pipelines and tests. The daemon makes three promises:
//
//   1. Every request gets exactly one reply: an answer (exact or
//      `degraded=1`), a per-request `error=...`, or `overloaded=1` when
//      the bounded admission queue sheds it. Overload degrades service,
//      never correctness and never liveness.
//   2. `op=health` requests bypass the admission queue entirely — a
//      supervisor's liveness probe must succeed precisely when the daemon
//      is busiest.
//   3. SIGTERM/SIGINT drain gracefully: stop accepting work, answer
//      everything already admitted, flush the disk cache tier, exit 0.
//
// The event loop is single-threaded: poll() over the listening socket,
// the connected clients (or stdin), ingest every complete line, then
// evaluate one bounded batch. Admission control is therefore exact — the
// queue bound is checked at enqueue, not asynchronously.
#pragma once

#include <cstdint>
#include <csignal>
#include <string>

#include "serve/engine.hpp"

namespace obd::serve {

/// Accepts one pending connection on `listen_fd`. Returns the connected
/// fd, or -1 when accept fails — including the injected `serve.accept`
/// fault — after recording a diagnostic; the caller simply retries on the
/// next poll wakeup, so a transient accept failure costs one client retry,
/// never the daemon.
int accept_client(int listen_fd);

struct ServerOptions {
  std::string socket_path;  ///< unix socket to listen on (socket mode)
  bool use_stdin = false;   ///< serve stdin -> stdout instead of a socket
  std::size_t queue_limit = 1024;  ///< admitted-but-unanswered bound
  std::size_t batch_max = 64;      ///< queries evaluated per loop turn
  /// Graceful-drain request flag (the CLI's SIGINT/SIGTERM handler sets
  /// it); nullptr disables signal-driven drain (tests drive EOF instead).
  volatile std::sig_atomic_t* stop_flag = nullptr;
};

struct ServerStats {
  std::uint64_t received = 0;  ///< parsed query requests
  std::uint64_t shed = 0;      ///< overloaded replies
  std::uint64_t health = 0;    ///< health replies
  std::uint64_t parse_errors = 0;
};

/// The daemon event loop. Owns the transport; borrows the engine.
class Server {
 public:
  Server(QueryEngine& engine, ServerOptions options);

  /// Runs until EOF (stdin mode), the stop flag, or a fatal transport
  /// error at startup (bind/listen failures throw Error(kIo)). Returns 0
  /// after a clean drain: pending queries answered, disk cache flushed.
  int run();

  [[nodiscard]] const ServerStats& stats() const { return stats_; }

 private:
  QueryEngine& engine_;
  ServerOptions options_;
  ServerStats stats_;
};

}  // namespace obd::serve
