// Surrogate fast path: certified Chebyshev F(t) evaluation vs the exact
// per-query hybrid-table corner path (core::ConditionEvaluator over
// serve-resolution tables). The workload is a serve-style corner sweep —
// many (dT, vdd, activity) corners, many time stamps each — on an
// all-mechanism competing-risks problem, the hardest channel-decomposition
// case the default node counts are sized for.
//
// Gates (all reflected in the exit code, and in BENCH_surrogate.json):
//   certified     the fit's certificate holds at the default 1e-4 bound
//   recert_match  re-running certify() against a freshly rebuilt
//                 fit-resolution reference reproduces the stored
//                 certificate bit for bit (the determinism the serve
//                 tier's disk cache relies on)
//   speedup       surrogate (plan_corner + evaluate_at) at least
//                 kMinSpeedup x faster than the exact corner path on the
//                 same (corner, t) sweep
//   refusal       out-of-domain probes on every axis are refused by
//                 in_domain (the fall-through contract)
//
// The sweep's observed max relative gap vs the serve-resolution exact
// path is reported as info only: it folds in the coarse tables' own
// bilinear error, which the certificate (probed against the dense
// fit-resolution reference) deliberately excludes.
//
// Why the problem is 128 blocks: the exact corner path walks every block
// per evaluation, so its cost grows linearly with block count, while the
// surrogate's channel tensors collapse the whole chip into one pencil
// per channel — evaluate_at cost is independent of block count. A
// fleet-scale floorplan is exactly where the fast path earns its keep
// (on a toy 14-block problem the same sweep shows ~5x, not 50x).
//
// Scaling knob: OBDREL_SURROGATE_BENCH_CORNERS overrides the per-axis
// corner count (default 4 -> 4*4*4 = 64 corners x 129 times).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "core/condition_eval.hpp"
#include "core/device_model.hpp"
#include "core/hybrid.hpp"
#include "core/problem.hpp"
#include "surrogate/surrogate.hpp"
#include "variation/model.hpp"

namespace {

constexpr double kMinSpeedup = 50.0;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

volatile double g_sink = 0.0;

}  // namespace

int main() {
  using namespace obd;
  const std::size_t per_axis =
      bench::env_size("OBDREL_SURROGATE_BENCH_CORNERS", 4);

  // The surrogate test fixture's all-mechanism problem at bench scale:
  // 128 blocks, oxide + NBTI + EM + HCI, activity-correlated temperatures.
  const chip::Design design = chip::make_synthetic_design(
      "SURB", {.devices = 20000, .block_count = 128, .die_width = 6.0,
               .die_height = 6.0, .seed = 97});
  std::vector<double> temps(design.blocks.size());
  for (std::size_t j = 0; j < temps.size(); ++j)
    temps[j] = 55.0 + 40.0 * design.blocks[j].activity;
  core::ProblemOptions popts;
  popts.grid_cells_per_side = 8;
  popts.mechanisms.nbti = true;
  popts.mechanisms.em = true;
  popts.mechanisms.hci = true;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, core::AnalyticReliabilityModel{},
      temps, 1.2, popts);

  const surrogate::SurrogateOptions opts;  // default = certified 1e-4 setup
  std::printf(
      "surrogate fast path: %zu blocks, %zu mechanism channel(s) + oxide, "
      "default node counts (%zu/%zu/%zu/%zu/%zu)\n",
      problem.blocks().size(), problem.mechanisms().extras().size(),
      opts.n_t, opts.n_t_aging, opts.n_dt, opts.n_vdd, opts.n_act);

  Stopwatch fit_sw;
  const surrogate::SurrogateModel model =
      surrogate::SurrogateModel::fit(problem, opts);
  const double fit_seconds = fit_sw.seconds();
  const surrogate::SurrogateCertificate& cert = model.certificate();
  const bool certified = cert.certified && cert.max_rel_error <= opts.tol;
  std::printf(
      "fit %.2f s: certified=%d max_rel_error=%.3g mean=%.3g tol=%.3g "
      "probes=%zu\n",
      fit_seconds, cert.certified ? 1 : 0, cert.max_rel_error,
      cert.mean_rel_error, cert.tol, cert.probes);

  // Re-verification: rebuild the fit-resolution reference from scratch and
  // re-run the deterministic probes. Bit-equality, not tolerance.
  const core::HybridOptions ref_opts =
      surrogate::fit_reference_options(problem, opts);
  const core::HybridEvaluator ref_hybrid(problem, ref_opts);
  core::ConditionEvaluator ref(ref_hybrid, opts.model);
  const surrogate::SurrogateCertificate recert =
      surrogate::certify(model, ref, opts.probe_points, opts.tol);
  const bool recert_match = recert.certified == cert.certified &&
                            recert.probes == cert.probes &&
                            same_bits(recert.max_rel_error,
                                      cert.max_rel_error) &&
                            same_bits(recert.mean_rel_error,
                                      cert.mean_rel_error);
  std::printf("re-certification %s (max_rel_error %.17g vs %.17g)\n",
              recert_match ? "MATCHES BIT FOR BIT" : "DIVERGED",
              recert.max_rel_error, cert.max_rel_error);

  // The serve-resolution exact comparator: the per-query path a daemon
  // without the surrogate tier pays for every corner query.
  core::HybridOptions serve_opts;
  serve_opts.n_gamma = 100;
  serve_opts.n_b = 100;
  const core::HybridEvaluator serve_hybrid(problem, serve_opts);
  core::ConditionEvaluator exact(serve_hybrid, opts.model);

  // Deterministic corner grid strictly inside the certified box, and a
  // log-spaced time sweep inside the t box.
  const surrogate::SurrogateDomain& dom = model.domain();
  const double vdd_mid = 0.5 * (dom.vdd_lo + dom.vdd_hi);
  std::vector<double> dts, vdds, acts;
  for (std::size_t i = 0; i < per_axis; ++i) {
    const double u = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(per_axis);  // (0, 1)
    dts.push_back(dom.dt_lo + u * (dom.dt_hi - dom.dt_lo));
    vdds.push_back(dom.vdd_lo + u * (dom.vdd_hi - dom.vdd_lo));
    acts.push_back(dom.act_lo + u * (dom.act_hi - dom.act_lo));
  }
  std::vector<double> ts;
  const std::size_t n_ts = 129;
  for (std::size_t k = 0; k < n_ts; ++k) {
    const double u = (static_cast<double>(k) + 0.5) /
                     static_cast<double>(n_ts);
    ts.push_back(dom.t_lo * std::pow(dom.t_hi / dom.t_lo, u));
  }
  const std::size_t corners = dts.size() * vdds.size() * acts.size();
  const std::size_t queries = corners * ts.size();

  // Exact lap: per (corner, t) through the condition evaluator.
  Stopwatch sw;
  std::vector<double> exact_f(queries);
  std::size_t q = 0;
  for (const double dt : dts)
    for (const double vdd : vdds)
      for (const double act : acts) {
        exact.set_corner(dt, vdd, act);
        for (const double t : ts) {
          exact_f[q++] = exact.evaluate(t);
          g_sink = exact_f[q - 1];
        }
      }
  const double seconds_exact = sw.seconds();

  // Surrogate lap: one plan per corner, Clenshaw per time stamp.
  sw.reset();
  std::vector<double> sur_f(queries);
  q = 0;
  for (const double dt : dts)
    for (const double vdd : vdds)
      for (const double act : acts) {
        const std::vector<double> plan = model.plan_corner(dt, vdd, act);
        for (const double t : ts) {
          sur_f[q++] = model.evaluate_at(plan, t);
          g_sink = sur_f[q - 1];
        }
      }
  const double seconds_surrogate = sw.seconds();
  const double speedup =
      seconds_surrogate > 0.0 ? seconds_exact / seconds_surrogate : 0.0;

  double sweep_max_rel = 0.0;
  for (std::size_t i = 0; i < queries; ++i)
    sweep_max_rel =
        std::max(sweep_max_rel, std::abs(sur_f[i] - exact_f[i]) /
                                    std::max(std::abs(exact_f[i]), 1e-12));
  std::printf(
      "sweep %zu corner(s) x %zu time(s): exact %.3f s, surrogate %.3f s "
      "(%.0fx), max rel gap vs serve tables %.3g (info)\n",
      corners, ts.size(), seconds_exact, seconds_surrogate, speedup,
      sweep_max_rel);

  // Refusal: one probe past each face of the box must be out of domain.
  const double t_mid = std::sqrt(dom.t_lo * dom.t_hi);
  const bool refused =
      !model.in_domain(dom.dt_hi * 2.0 + 1.0, vdd_mid, 1.0, t_mid) &&
      !model.in_domain(dom.dt_lo * 2.0 - 1.0, vdd_mid, 1.0, t_mid) &&
      !model.in_domain(0.0, dom.vdd_hi + 0.1, 1.0, t_mid) &&
      !model.in_domain(0.0, vdd_mid, dom.act_hi + 0.5, t_mid) &&
      !model.in_domain(0.0, vdd_mid, 1.0, dom.t_hi * 2.0) &&
      !model.in_domain(0.0, vdd_mid, 1.0, dom.t_lo * 0.5);

  const bool speedup_ok = speedup >= kMinSpeedup;
  const bool pass = certified && recert_match && speedup_ok && refused;
  std::printf(
      "\ngates: certified %s, recert %s, speedup >= %.0fx %s, refusal %s "
      "=> %s\n",
      certified ? "PASS" : "FAIL", recert_match ? "PASS" : "FAIL",
      kMinSpeedup, speedup_ok ? "PASS" : "FAIL", refused ? "PASS" : "FAIL",
      pass ? "PASS" : "FAIL");

  std::string dir = csv_output_dir();
  const std::string path =
      (dir.empty() ? std::string{} : dir + "/") + "BENCH_surrogate.json";
  std::ofstream out(path);
  out << "{\n"
      << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
      << "  \"certified\": " << (certified ? "true" : "false") << ",\n"
      << "  \"max_rel_error\": " << cert.max_rel_error << ",\n"
      << "  \"mean_rel_error\": " << cert.mean_rel_error << ",\n"
      << "  \"tol\": " << cert.tol << ",\n"
      << "  \"probes\": " << cert.probes << ",\n"
      << "  \"recert_match\": " << (recert_match ? "true" : "false") << ",\n"
      << "  \"fit_seconds\": " << fit_seconds << ",\n"
      << "  \"corners\": " << corners << ",\n"
      << "  \"times\": " << ts.size() << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"seconds_exact\": " << seconds_exact << ",\n"
      << "  \"seconds_surrogate\": " << seconds_surrogate << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"min_speedup\": " << kMinSpeedup << ",\n"
      << "  \"out_of_domain_refused\": " << (refused ? "true" : "false")
      << ",\n"
      << "  \"sweep_max_rel_vs_tables\": " << sweep_max_rel << "\n"
      << "}\n";
  std::printf("(wrote %s)\n", path.c_str());
  return pass ? 0 : 1;
}
