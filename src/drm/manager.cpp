#include "drm/manager.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "numeric/roots.hpp"
#include "power/power.hpp"
#include "thermal/block_model.hpp"

namespace obd::drm {

ReliabilityManager::ReliabilityManager(
    const core::ReliabilityProblem& problem,
    const core::DeviceReliabilityModel& model,
    std::vector<OperatingPoint> ladder, const DrmOptions& options)
    : problem_(&problem),
      model_(&model),
      ladder_(std::move(ladder)),
      options_(options),
      lut_(problem),
      block_damage_(problem.blocks().size(), 0.0) {
  require(!ladder_.empty(), "ReliabilityManager: empty DVFS ladder");
  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    require(ladder_[i].vdd > 0.0 && ladder_[i].frequency > 0.0,
            "ReliabilityManager: invalid operating point");
    if (i > 0)
      require(ladder_[i].frequency >= ladder_[i - 1].frequency,
              "ReliabilityManager: ladder must be sorted slow -> fast");
  }
  require(options_.lifetime_target_s > 0.0 &&
              options_.failure_budget > 0.0 &&
              options_.control_interval_s > 0.0,
          "ReliabilityManager: invalid options");
}

double ReliabilityManager::budget_line(double t) const {
  return options_.failure_budget *
         std::min(1.0, t / options_.lifetime_target_s);
}

double ReliabilityManager::damage() const {
  double total = 0.0;
  for (double d : block_damage_) total += d;
  return total;
}

ReliabilityManager::Conditions ReliabilityManager::conditions_for(
    const OperatingPoint& op, double workload_activity) const {
  require(workload_activity >= 0.0,
          "ReliabilityManager: negative workload activity");
  chip::Design scaled = problem_->design();
  for (auto& b : scaled.blocks)
    b.activity = std::min(1.0, b.activity * workload_activity);

  power::PowerParams pp;
  pp.vdd = op.vdd;
  pp.frequency = op.frequency;
  // One leakage-feedback pass at block granularity (fast and sufficient —
  // the block model is already approximate).
  power::PowerMap map = power::estimate_power(scaled, pp);
  auto profile = thermal::solve_thermal_blocks(scaled, map, options_.thermal);
  map = power::estimate_power(scaled, pp, profile.block_temps_c);
  profile = thermal::solve_thermal_blocks(scaled, map, options_.thermal);

  Conditions c;
  c.max_temp_c = *std::max_element(profile.block_temps_c.begin(),
                                   profile.block_temps_c.end());
  c.alphas.reserve(profile.block_temps_c.size());
  c.bs.reserve(profile.block_temps_c.size());
  for (double t : profile.block_temps_c) {
    c.alphas.push_back(model_->alpha(t, op.vdd));
    c.bs.push_back(model_->b(t, op.vdd));
  }
  return c;
}

double ReliabilityManager::advanced_damage(std::size_t j, double d_j,
                                           double alpha, double b,
                                           double dt) const {
  const auto& opt = lut_.options();
  const double b_clamped = std::clamp(b, opt.b_lo, opt.b_hi);

  // Effective age under the *new* conditions: the gamma at which the block
  // would have accumulated its current damage.
  double tau0 = 0.0;
  if (d_j > 0.0) {
    const double d_lo = lut_.block_failure(j, opt.gamma_lo, b_clamped);
    const double d_hi = lut_.block_failure(j, opt.gamma_hi, b_clamped);
    if (d_j <= d_lo) {
      tau0 = 0.0;
    } else if (d_j >= d_hi) {
      tau0 = alpha * std::exp(opt.gamma_hi);
    } else {
      const double gamma0 = num::brent(
          [&](double g) {
            return lut_.block_failure(j, g, b_clamped) - d_j;
          },
          opt.gamma_lo, opt.gamma_hi, 1e-12);
      tau0 = alpha * std::exp(gamma0);
    }
  }
  const double gamma1 =
      std::min(opt.gamma_hi, std::log((tau0 + dt) / alpha));
  // Damage never decreases (the lookup is monotone in gamma; the max
  // guards roundoff at the recursion boundaries).
  return std::max(d_j, lut_.block_failure(j, gamma1, b_clamped));
}

DrmStep ReliabilityManager::step_fixed(std::size_t op_index,
                                       double workload_activity) {
  require(op_index < ladder_.size(), "ReliabilityManager: rung out of range");
  const Conditions c = conditions_for(ladder_[op_index], workload_activity);
  const double dt = options_.control_interval_s;
  for (std::size_t j = 0; j < block_damage_.size(); ++j)
    block_damage_[j] = advanced_damage(j, block_damage_[j], c.alphas[j],
                                       c.bs[j], dt);
  elapsed_s_ += dt;

  DrmStep out;
  out.op_index = op_index;
  out.performance =
      ladder_[op_index].frequency * std::min(1.0, workload_activity);
  out.damage = damage();
  out.budget_line = budget_line(elapsed_s_);
  out.max_temp_c = c.max_temp_c;
  return out;
}

DrmStep ReliabilityManager::step(double workload_activity) {
  const double dt = options_.control_interval_s;
  const double allowance = budget_line(elapsed_s_ + dt);

  // Try rungs fastest-first; commit the first one whose projected total
  // damage stays on the trajectory.
  std::size_t chosen = 0;  // fallback: slowest rung
  std::vector<double> best_damage;
  for (std::size_t r = ladder_.size(); r-- > 0;) {
    const Conditions c = conditions_for(ladder_[r], workload_activity);
    std::vector<double> projected(block_damage_.size());
    double total = 0.0;
    for (std::size_t j = 0; j < block_damage_.size(); ++j) {
      projected[j] = advanced_damage(j, block_damage_[j], c.alphas[j],
                                     c.bs[j], dt);
      total += projected[j];
    }
    if (total <= allowance || r == 0) {
      chosen = r;
      best_damage = std::move(projected);
      break;
    }
  }

  const Conditions c = conditions_for(ladder_[chosen], workload_activity);
  block_damage_ = std::move(best_damage);
  elapsed_s_ += dt;

  DrmStep out;
  out.op_index = chosen;
  out.performance =
      ladder_[chosen].frequency * std::min(1.0, workload_activity);
  out.damage = damage();
  out.budget_line = budget_line(elapsed_s_);
  out.max_temp_c = c.max_temp_c;
  return out;
}

}  // namespace obd::drm
