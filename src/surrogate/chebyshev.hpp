// Chebyshev tensor-grid interpolation on Chebyshev–Gauss–Lobatto nodes.
//
// A ChebTensor is a dense tensor-product interpolant
//     p(x) = sum_k c_{k0..k_{D-1}} prod_a T_{k_a}(u_a(x_a))
// fit by sampling a function at the CGL node tensor and running the
// cosine-transform coefficient recovery axis by axis (exact interpolation
// at the nodes). Evaluation contracts one axis at a time — slowest axis
// first — through the SIMD kernel table's clenshaw_batch, whose
// bit-identity contract (kernels.hpp) makes every evaluation identical
// across scalar/AVX2/AVX-512 dispatch: the surrogate layer's certificate
// therefore holds at any tier.
//
// Coefficient layout: axis 0 fastest,
//     idx = i0 + n0 * (i1 + n1 * (i2 + ...)).
// Axis 0 is the "pencil" axis of contract_tail(): contracting every other
// axis once leaves a 1-D Chebyshev pencil in axis 0 that sweeps (e.g.
// many time stamps at one operating corner) evaluate in O(n0) each.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace obd::surrogate {

/// One tensor axis: n Chebyshev–Gauss–Lobatto nodes over [lo, hi].
struct ChebAxis {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t n = 1;  ///< node count (= degree + 1); n == 1 pins the center

  /// Node i in [lo, hi]. Nodes run hi -> lo (u = cos(pi i / (n-1))
  /// descends from +1); a single-node axis sits at the center.
  [[nodiscard]] double node(std::size_t i) const;
  /// Maps x in [lo, hi] onto u in [-1, 1] (no clamping — domain
  /// enforcement is the caller's certificate logic).
  [[nodiscard]] double to_unit(double x) const;
  [[nodiscard]] bool contains(double x) const { return x >= lo && x <= hi; }
  /// Midpoint i (in node space) of the n-1 inter-node gaps — the held-out
  /// certification grid. A single-node axis has one midpoint: the center.
  [[nodiscard]] double midpoint(std::size_t i) const;
  [[nodiscard]] std::size_t midpoint_count() const {
    return n > 1 ? n - 1 : 1;
  }
};

class ChebTensor {
 public:
  ChebTensor() = default;
  /// Deserialization constructor; `coeffs.size()` must equal the product
  /// of the axis node counts.
  ChebTensor(std::vector<ChebAxis> axes, std::vector<double> coeffs);

  /// Fits by sampling `fn` at every tensor node — axis-0 index innermost,
  /// so a caller whose tail coordinates are expensive to apply (an
  /// operating corner) can cache work across the axis-0 sweep — then
  /// recovering coefficients with the CGL cosine transform per axis.
  static ChebTensor fit(std::vector<ChebAxis> axes,
                        const std::function<double(const double*)>& fn);

  [[nodiscard]] const std::vector<ChebAxis>& axes() const { return axes_; }
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coeffs_;
  }

  /// Interpolant value at x (one coordinate per axis). Allocates its own
  /// scratch, so concurrent calls on one tensor are safe.
  [[nodiscard]] double eval(const double* x) const;

  /// Contracts every axis but axis 0 at x_tail = (x_1, ..., x_{D-1}),
  /// returning the axis-0 Chebyshev pencil (n0 coefficients).
  [[nodiscard]] std::vector<double> contract_tail(const double* x_tail) const;

  /// Evaluates a contract_tail() pencil at axis-0 coordinate x0. The
  /// pointer variant reads `n` coefficients from `pencil` (for pencils
  /// packed into a larger plan buffer).
  [[nodiscard]] double eval_pencil(const std::vector<double>& pencil,
                                   double x0) const;
  [[nodiscard]] double eval_pencil_at(const double* pencil, std::size_t n,
                                      double x0) const;

 private:
  std::vector<ChebAxis> axes_;
  std::vector<double> coeffs_;
};

}  // namespace obd::surrogate
