// Per-step bump arena for the hot control/evaluation loops.
//
// The DRM step loop, the duty-cycle evaluator, and the batched sweep
// drivers used to allocate short-lived std::vector scratch on every step
// (projected-damage vectors per rung, per-block oxide rows, ...). At
// fleet-trace rates those allocations dominate the fixed per-step cost,
// and they serialize on the allocator when the pool is busy. An Arena is
// a chunked bump allocator: allocation is a pointer increment, and a
// whole step's scratch is released at once by restoring a mark — no
// per-object bookkeeping, no destructor walks (trivially destructible
// payloads only).
//
// Usage pattern (one frame per step):
//
//   ArenaFrame frame;                       // thread-local step arena
//   std::span<double> scratch = frame.arena().make_span<double>(n);
//   ...                                      // scratch valid in the frame
//                                            // frame destructor releases
//
// Frames nest (a step frame may contain a projection frame); release is
// strictly LIFO via the saved mark. Each thread owns its arena
// (`step_arena()` is thread_local), so frames never contend. Cumulative
// counters aggregate across threads and are published as the
// `arena.bytes` diagnostics stat by publish_arena_stats().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace obd {

class Arena {
 public:
  /// `initial_bytes` sizes the first chunk; later chunks grow
  /// geometrically, so a frame that outgrows the arena pays one
  /// allocation and never again at that size.
  explicit Arena(std::size_t initial_bytes = 64 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `alignment` (a power of two).
  /// Never fails except by propagating bad_alloc from a new chunk.
  void* allocate(std::size_t bytes, std::size_t alignment);

  /// Typed span of `n` default-initialized T. T must be trivially
  /// destructible — the arena never runs destructors.
  template <typename T>
  std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena holds trivially destructible payloads only");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) p[i] = T{};
    return {p, n};
  }

  /// Position in the arena; release(mark()) frees everything allocated
  /// after the mark (LIFO only — ArenaFrame enforces the discipline).
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };
  [[nodiscard]] Mark mark() const { return {active_, chunks_[active_].used}; }
  void release(const Mark& m);

  /// Bytes currently allocated across all chunks.
  [[nodiscard]] std::size_t used() const;
  /// Largest `used()` this arena ever reached.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };
  void add_chunk(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;       ///< index of the chunk being bumped
  std::size_t high_water_ = 0;
};

/// This thread's step arena (created on first use, lives for the thread).
[[nodiscard]] Arena& step_arena();

/// RAII frame over an arena: saves a mark on entry, releases it on exit.
/// Default-constructed frames use the calling thread's step arena.
class ArenaFrame {
 public:
  ArenaFrame() : ArenaFrame(step_arena()) {}
  explicit ArenaFrame(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
  ~ArenaFrame() { arena_->release(mark_); }
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

  [[nodiscard]] Arena& arena() { return *arena_; }

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// Cumulative arena counters aggregated over every thread's step arena
/// (and any explicit Arena), since process start.
struct ArenaStats {
  std::uint64_t allocations = 0;  ///< allocate() calls
  std::uint64_t bytes = 0;        ///< bytes served (cumulative)
  std::uint64_t high_water = 0;   ///< max per-arena resident high water
};
[[nodiscard]] ArenaStats arena_stats();

/// Records a one-line arena summary into obd::diagnostics() as a
/// non-degrading "arena.bytes" stat — a no-op when no arena allocation
/// has happened yet.
void publish_arena_stats();

}  // namespace obd
