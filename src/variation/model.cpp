#include "variation/model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "linalg/eigen.hpp"

namespace obd::var {

double VariationBudget::sigma_global() const {
  return sigma_total() * std::sqrt(global_share);
}

double VariationBudget::sigma_spatial() const {
  return sigma_total() * std::sqrt(spatial_share);
}

double VariationBudget::sigma_independent() const {
  return sigma_total() * std::sqrt(independent_share);
}

void VariationBudget::validate() const {
  require(nominal > 0.0, "VariationBudget: nominal must be positive");
  require(three_sigma_fraction > 0.0,
          "VariationBudget: variation fraction must be positive");
  require(global_share >= 0.0 && spatial_share >= 0.0 &&
              independent_share >= 0.0,
          "VariationBudget: variance shares must be non-negative");
  const double sum = global_share + spatial_share + independent_share;
  require(std::fabs(sum - 1.0) < 1e-9,
          "VariationBudget: variance shares must sum to 1");
}

GridModel::GridModel(double die_width, double die_height,
                     std::size_t cells_per_side)
    : width_(die_width), height_(die_height), side_(cells_per_side) {
  require(die_width > 0.0 && die_height > 0.0, "GridModel: die size");
  require(cells_per_side > 0, "GridModel: need at least one cell");
}

std::size_t GridModel::index_at(double x, double y) const {
  const double fx = std::clamp(x / width_, 0.0, 1.0 - 1e-12);
  const double fy = std::clamp(y / height_, 0.0, 1.0 - 1e-12);
  const auto cx = static_cast<std::size_t>(fx * static_cast<double>(side_));
  const auto cy = static_cast<std::size_t>(fy * static_cast<double>(side_));
  return cy * side_ + cx;
}

chip::Rect GridModel::cell_rect(std::size_t i) const {
  require(i < cell_count(), "GridModel::cell_rect: index out of range");
  const double cw = width_ / static_cast<double>(side_);
  const double ch = height_ / static_cast<double>(side_);
  const std::size_t cx = i % side_;
  const std::size_t cy = i / side_;
  return {static_cast<double>(cx) * cw, static_cast<double>(cy) * ch, cw, ch};
}

double GridModel::distance(std::size_t i, std::size_t j) const {
  require(i < cell_count() && j < cell_count(),
          "GridModel::distance: index out of range");
  // Integer displacement times the cell pitch: the column/row differences
  // are exact in double, so the distance is translation-invariant — every
  // cell pair with the same (dx, dy) gets the bit-identical value. The
  // covariance builder's displacement table relies on this.
  const double cw = width_ / static_cast<double>(side_);
  const double ch = height_ / static_cast<double>(side_);
  const double dx =
      (static_cast<double>(i % side_) - static_cast<double>(j % side_)) * cw;
  const double dy =
      (static_cast<double>(i / side_) - static_cast<double>(j / side_)) * ch;
  return std::hypot(dx, dy);
}

double kernel_correlation(CorrelationKernel kernel, double d,
                          double length) {
  require(length > 0.0, "kernel_correlation: length must be positive");
  require(d >= 0.0, "kernel_correlation: distance must be non-negative");
  const double r = d / length;
  switch (kernel) {
    case CorrelationKernel::kExponential:
      return std::exp(-r);
    case CorrelationKernel::kGaussian:
      return std::exp(-r * r);
    case CorrelationKernel::kMatern32: {
      const double s = std::sqrt(3.0) * r;
      return (1.0 + s) * std::exp(-s);
    }
    case CorrelationKernel::kSpherical:
      if (r >= 1.0) return 0.0;
      return 1.0 - 1.5 * r + 0.5 * r * r * r;
  }
  throw Error("kernel_correlation: unknown kernel");
}

la::Matrix build_covariance(const GridModel& grid,
                            const VariationBudget& budget, double rho_dist,
                            CorrelationKernel kernel) {
  budget.validate();
  require(rho_dist > 0.0, "build_covariance: rho_dist must be positive");
  const double length =
      rho_dist * std::max(grid.die_width(), grid.die_height());
  const double vg = budget.sigma_global() * budget.sigma_global();
  const double vs = budget.sigma_spatial() * budget.sigma_spatial();
  const std::size_t n = grid.cell_count();
  const std::size_t side = grid.cells_per_side();

  // On the regular grid the correlation depends only on the absolute
  // integer displacement (|dx|, |dy|), so the kernel is evaluated once per
  // unique displacement — O(side^2) evaluations instead of n^2/2. Because
  // GridModel::distance is computed from the integer displacement, the
  // table entries are bit-identical to per-pair evaluation.
  const double cw = grid.die_width() / static_cast<double>(side);
  const double ch = grid.die_height() / static_cast<double>(side);
  std::vector<double> table(side * side);
  for (std::size_t dy = 0; dy < side; ++dy) {
    for (std::size_t dx = 0; dx < side; ++dx) {
      const double d = std::hypot(static_cast<double>(dx) * cw,
                                  static_cast<double>(dy) * ch);
      table[dy * side + dx] = vg + vs * kernel_correlation(kernel, d, length);
    }
  }

  la::Matrix c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t xi = i % side;
    const std::size_t yi = i / side;
    for (std::size_t j = i; j < n; ++j) {
      const std::size_t dx = (j % side > xi) ? j % side - xi : xi - j % side;
      const std::size_t dy = (j / side > yi) ? j / side - yi : yi - j / side;
      const double cov = table[dy * side + dx];
      c(i, j) = cov;
      c(j, i) = cov;
    }
  }
  return c;
}

CanonicalForm::CanonicalForm(la::Vector nominal, la::Matrix sensitivity,
                             double residual_sigma)
    : nominal_(std::move(nominal)),
      sensitivity_(std::move(sensitivity)),
      residual_sigma_(residual_sigma) {
  require(!nominal_.empty(), "CanonicalForm: empty nominal vector");
  require(sensitivity_.rows() == nominal_.size(),
          "CanonicalForm: sensitivity row count must match grid count");
  require(residual_sigma_ >= 0.0,
          "CanonicalForm: residual sigma must be non-negative");
}

double CanonicalForm::correlated_thickness(std::size_t grid,
                                           const la::Vector& z) const {
  require(grid < grid_count(), "CanonicalForm: grid index out of range");
  require(z.size() == pc_count(), "CanonicalForm: z dimension mismatch");
  double x = nominal_[grid];
  const double* s = sensitivity_.row(grid);
  for (std::size_t k = 0; k < z.size(); ++k) x += s[k] * z[k];
  return x;
}

double CanonicalForm::thickness(std::size_t grid, const la::Vector& z,
                                double eps) const {
  return correlated_thickness(grid, z) + residual_sigma_ * eps;
}

double CanonicalForm::correlated_sigma(std::size_t grid) const {
  require(grid < grid_count(), "CanonicalForm: grid index out of range");
  const double* s = sensitivity_.row(grid);
  double v = 0.0;
  for (std::size_t k = 0; k < pc_count(); ++k) v += s[k] * s[k];
  return std::sqrt(v);
}

la::Vector CanonicalForm::sample_z(stats::Rng& rng) const {
  la::Vector z(pc_count());
  for (auto& zk : z) zk = rng.normal();
  return z;
}

CanonicalForm make_canonical_form(const GridModel& grid,
                                  const VariationBudget& budget,
                                  double rho_dist, double variance_capture,
                                  const WaferPattern& pattern,
                                  CorrelationKernel kernel,
                                  EigenSolver solver) {
  require(variance_capture > 0.0 && variance_capture <= 1.0,
          "make_canonical_form: variance_capture must be in (0, 1]");
  la::Matrix cov = build_covariance(grid, budget, rho_dist, kernel);

  // Near-singular correlation matrices can stall the QL iteration. Retry
  // with an escalating diagonal ridge (which shifts the spectrum away from
  // the degenerate cluster) before giving up; each retry only perturbs the
  // per-cell variance by a relative ~1e-10..1e-4, far below the model's
  // own accuracy. (The truncated solver falls back to the dense path
  // internally, so the retry ladder covers both.)
  const double mean_var = cov.trace() / static_cast<double>(cov.rows());
  la::EigenDecomposition eig;
  for (int attempt = 0;; ++attempt) {
    try {
      eig = (solver == EigenSolver::kTruncated)
                ? la::eigen_symmetric_truncated(cov, variance_capture)
                : la::eigen_symmetric(cov);
      break;
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kNonconvergence || attempt >= 3) throw;
      const double ridge = mean_var * std::pow(1e3, attempt) * 1e-10;
      for (std::size_t i = 0; i < cov.rows(); ++i) cov(i, i) += ridge;
      std::ostringstream msg;
      msg << "make_canonical_form: eigensolve did not converge; retrying "
             "with diagonal ridge "
          << ridge;
      diagnostics().warn(fault::site::kEigen, msg.str());
    }
  }

  // Select the leading principal components capturing the requested share
  // of total variance (the truncated solver already returns exactly that
  // set). Eigenvalues are sorted descending; tiny negative values from
  // roundoff are clipped by the shared truncation rule.
  const std::size_t keep =
      (solver == EigenSolver::kTruncated)
          ? eig.values.size()
          : la::leading_component_count(eig.values, variance_capture);
  require(keep > 0, "make_canonical_form: covariance has no variance");
  la::Matrix sens = la::principal_factor(eig, keep);

  const std::size_t n = grid.cell_count();
  la::Vector nominal(n, budget.nominal);
  if (!pattern.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      const chip::Rect r = grid.cell_rect(i);
      const double xn = 2.0 * r.center_x() / grid.die_width() - 1.0;
      const double yn = 2.0 * r.center_y() / grid.die_height() - 1.0;
      nominal[i] += pattern.offset(xn, yn);
    }
  }

  return CanonicalForm(std::move(nominal), std::move(sens),
                       budget.sigma_independent());
}

BlockGridLayout assign_devices(const chip::Design& design,
                               const GridModel& grid) {
  design.validate();
  BlockGridLayout layout;
  layout.weights.resize(design.blocks.size());
  const std::size_t side = grid.cells_per_side();
  const double cw = grid.die_width() / static_cast<double>(side);
  const double ch = grid.die_height() / static_cast<double>(side);
  // Conservative cell range for a coordinate interval [lo, hi): one cell of
  // slack on each end absorbs floating-point rounding of the division; the
  // exact overlap test below discards any zero-overlap cell, so the result
  // is identical to scanning every cell.
  const auto cell_range = [](double lo, double hi, double cell,
                             std::size_t count) {
    const double flo = std::floor(lo / cell) - 1.0;
    const double fhi = std::floor(hi / cell) + 1.0;
    const std::size_t first =
        (flo <= 0.0) ? 0 : std::min(count - 1, static_cast<std::size_t>(flo));
    const std::size_t last =
        (fhi <= 0.0) ? 0 : std::min(count - 1, static_cast<std::size_t>(fhi));
    return std::pair<std::size_t, std::size_t>{first, last};
  };
  for (std::size_t b = 0; b < design.blocks.size(); ++b) {
    const chip::Rect& rect = design.blocks[b].rect;
    const double area = rect.area();
    auto& entries = layout.weights[b];
    double sum = 0.0;
    // Only cells intersecting the block's bounding box can overlap it;
    // iterating rows-outer keeps the entries in ascending grid order, as
    // the full scan produced.
    const auto [cx_lo, cx_hi] =
        cell_range(rect.x, rect.x + rect.width, cw, side);
    const auto [cy_lo, cy_hi] =
        cell_range(rect.y, rect.y + rect.height, ch, side);
    for (std::size_t cy = cy_lo; cy <= cy_hi; ++cy) {
      for (std::size_t cx = cx_lo; cx <= cx_hi; ++cx) {
        const std::size_t g = cy * side + cx;
        const double ov = rect.overlap(grid.cell_rect(g));
        if (ov <= 0.0) continue;
        entries.emplace_back(g, ov / area);
        sum += ov / area;
      }
    }
    require(!entries.empty(),
            "assign_devices: block does not overlap any grid cell");
    // Renormalize against floating-point slack so weights sum to exactly 1.
    for (auto& [g, w] : entries) w /= sum;
  }
  return layout;
}

}  // namespace obd::var
