// Sign-off report generation: one call that runs the standard analysis
// battery (lifetimes by target, guard-band comparison, block ranking,
// leakage, elasticities) and renders it as text — the artifact a
// reliability engineer attaches to a design review.
#pragma once

#include <string>
#include <vector>

#include "core/leakage.hpp"
#include "core/problem.hpp"
#include "core/sensitivity.hpp"

namespace obd::core {

struct SignOffReport {
  std::string design_name;
  std::size_t devices = 0;
  std::size_t blocks = 0;
  double vdd = 0.0;
  double temp_min_c = 0.0;
  double temp_max_c = 0.0;
  /// Mechanism composition summary ("oxide" for the seed default; e.g.
  /// "oxide,nbti,em,hci" with 4 mechanisms). Rendered only when it
  /// differs from the default so default reports stay byte-identical.
  std::string mechanisms = "oxide";
  std::size_t redundancy_groups = 0;

  struct LifetimeRow {
    double target = 0.0;       ///< failure quantile
    double statistical_s = 0.0;///< st_fast lifetime [s]
    double guard_s = 0.0;      ///< guard-band lifetime [s]
  };
  std::vector<LifetimeRow> lifetimes;

  /// Blocks ranked by failure share at the first target's lifetime.
  std::vector<BlockSensitivity> ranking;
  /// Relative lifetime change per +10 mV supply.
  double vdd_elasticity = 0.0;

  double leakage_mean_a = 0.0;
  double leakage_nominal_a = 0.0;

  /// Renders the report as aligned plain text.
  [[nodiscard]] std::string render() const;
};

/// Runs the battery. `targets` defaults to {1e-6, 1e-5} when empty.
SignOffReport make_signoff_report(const ReliabilityProblem& problem,
                                  const DeviceReliabilityModel& model,
                                  std::vector<double> targets = {});

}  // namespace obd::core
