// Tests for the analysis utilities added around the reproduction core:
// adaptive Simpson, Weibull MLE fitting, hazard curves, and CSV writing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "core/lifetime.hpp"
#include "numeric/quadrature.hpp"
#include "stats/distributions.hpp"
#include "stats/fit.hpp"
#include "stats/rng.hpp"

namespace obd {
namespace {

TEST(AdaptiveSimpson, MatchesClosedForms) {
  EXPECT_NEAR(num::adaptive_simpson([](double x) { return std::sin(x); },
                                    0.0, M_PI),
              2.0, 1e-9);
  EXPECT_NEAR(num::adaptive_simpson(
                  [](double x) { return std::exp(-x * x); }, -8.0, 8.0),
              std::sqrt(M_PI), 1e-8);
  EXPECT_DOUBLE_EQ(
      num::adaptive_simpson([](double) { return 1.0; }, 2.0, 2.0), 0.0);
}

TEST(AdaptiveSimpson, RefinesWhereTheFunctionIsSharp) {
  // A sharp feature inside the interval: the adaptive rule matches a very
  // fine fixed rule to tolerance while touching far fewer points. (The
  // interval brackets the feature so the initial coarse samples see it —
  // the documented blind spot of any adaptive quadrature.)
  auto spike = [](double x) {
    return std::exp(-1e4 * (x - 0.31) * (x - 0.31));
  };
  const double reference = num::simpson_1d(spike, 0.25, 0.40, 40000);
  EXPECT_NEAR(num::adaptive_simpson(spike, 0.25, 0.40, 1e-12), reference,
              1e-10);
}

TEST(AdaptiveSimpson, RejectsBadArguments) {
  EXPECT_THROW(num::adaptive_simpson([](double) { return 0.0; }, 1.0, 0.0),
               Error);
  EXPECT_THROW(
      num::adaptive_simpson([](double) { return 0.0; }, 0.0, 1.0, -1.0),
      Error);
}

TEST(FitWeibull, RecoversKnownParameters) {
  stats::Rng rng(13);
  const stats::Weibull truth(3.0e8, 1.4);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(truth.sample(rng));
  const stats::WeibullFit fit = stats::fit_weibull(samples);
  EXPECT_NEAR(fit.beta, 1.4, 0.03);
  EXPECT_NEAR(fit.alpha / 3.0e8, 1.0, 0.02);
}

TEST(FitWeibull, HandlesExtremeShapes) {
  stats::Rng rng(14);
  for (double beta : {0.7, 4.0, 9.0}) {
    const stats::Weibull truth(10.0, beta);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) samples.push_back(truth.sample(rng));
    const stats::WeibullFit fit = stats::fit_weibull(samples);
    EXPECT_NEAR(fit.beta / beta, 1.0, 0.05) << "beta=" << beta;
  }
}

TEST(FitWeibull, LikelihoodPrefersTheTrueModel) {
  stats::Rng rng(15);
  const stats::Weibull truth(100.0, 2.0);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(truth.sample(rng));
  const stats::WeibullFit fit = stats::fit_weibull(samples);
  // Log-likelihood at the MLE beats a perturbed model.
  double ll_wrong = 0.0;
  for (double t : samples) {
    const double z = t / (fit.alpha * 1.5);
    ll_wrong += std::log(fit.beta / (fit.alpha * 1.5)) +
                (fit.beta - 1.0) * std::log(z) - std::pow(z, fit.beta);
  }
  EXPECT_GT(fit.log_likelihood, ll_wrong);
}

TEST(FitWeibull, RejectsDegenerateInput) {
  EXPECT_THROW(stats::fit_weibull({1.0, 2.0}), Error);
  EXPECT_THROW(stats::fit_weibull({1.0, 1.0, 1.0}), Error);
  EXPECT_THROW(stats::fit_weibull({1.0, -2.0, 3.0}), Error);
}

TEST(HazardCurve, MatchesWeibullClosedForm) {
  // lambda(t) = (beta/alpha) (t/alpha)^(beta-1) for a Weibull.
  // Range kept below the characteristic life: once F -> 1, (1 - F)
  // cancellation limits any finite-difference hazard estimate.
  const stats::Weibull w(1e6, 1.4);
  const auto curve = core::hazard_curve(
      [&](double t) { return w.cdf(t); }, 1e4, 8e5, 20);
  ASSERT_EQ(curve.size(), 20u);
  for (const auto& p : curve) {
    const double exact =
        1.4 / 1e6 * std::pow(p.time_s / 1e6, 0.4);
    EXPECT_NEAR(p.hazard_per_s / exact, 1.0, 0.01)
        << "t=" << p.time_s;
  }
}

TEST(HazardCurve, WearOutHazardIncreases) {
  // OBD is a wear-out mechanism (beta > 1): increasing hazard.
  const stats::Weibull w(1e8, 1.5);
  const auto curve = core::hazard_curve(
      [&](double t) { return w.cdf(t); }, 1e6, 1e9, 15);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GT(curve[i].hazard_per_s, curve[i - 1].hazard_per_s);
}

TEST(HazardCurve, RejectsBadRanges) {
  auto f = [](double) { return 0.5; };
  EXPECT_THROW(core::hazard_curve(f, -1.0, 1.0, 5), Error);
  EXPECT_THROW(core::hazard_curve(f, 1.0, 2.0, 1), Error);
}

TEST(Csv, QuotesAndCounts) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"name", "value", "note"});
  csv.row({"plain", "1", "with,comma"});
  csv.row({"quote\"inside", "2", "multi\nline"});
  EXPECT_EQ(csv.rows_written(), 3u);
  const std::string s = os.str();
  EXPECT_NE(s.find("name,value,note\n"), std::string::npos);
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, NumericRowsAndWidthCheck) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"a", "b"});
  csv.numeric_row({1.5, 2.25e-7});
  EXPECT_NE(os.str().find("1.5,2.25e-07"), std::string::npos);
  EXPECT_THROW(csv.row({"only-one"}), Error);
  EXPECT_THROW(csv.row({}), Error);
}

}  // namespace
}  // namespace obd
