#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace obd {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "TextTable: row width does not match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_count(std::size_t n) {
  char buf[64];
  if (n >= 100000) {
    std::snprintf(buf, sizeof(buf), "%.2gM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%zuK", n / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  }
  return buf;
}

}  // namespace obd
