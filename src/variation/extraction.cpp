#include "variation/extraction.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen.hpp"

namespace obd::var {

VariationBudget ExtractionResult::to_budget() const {
  VariationBudget b;
  b.nominal = nominal;
  const double vt = sigma_global * sigma_global +
                    sigma_spatial * sigma_spatial +
                    sigma_independent * sigma_independent;
  require(vt > 0.0, "ExtractionResult: no variance extracted");
  b.three_sigma_fraction = 3.0 * std::sqrt(vt) / nominal;
  b.global_share = sigma_global * sigma_global / vt;
  b.spatial_share = sigma_spatial * sigma_spatial / vt;
  b.independent_share = 1.0 - b.global_share - b.spatial_share;
  return b;
}

MeasurementSet simulate_measurements(const CanonicalForm& canonical,
                                     const GridModel& grid,
                                     std::size_t chips, std::size_t sites,
                                     stats::Rng& rng) {
  require(chips >= 2 && sites >= 2, "simulate_measurements: need data");
  MeasurementSet set;
  set.die_width = grid.die_width();
  set.die_height = grid.die_height();
  set.sites.reserve(sites);
  for (std::size_t s = 0; s < sites; ++s)
    set.sites.emplace_back(rng.uniform(0.0, grid.die_width()),
                           rng.uniform(0.0, grid.die_height()));
  set.thickness = la::Matrix(chips, sites);
  for (std::size_t c = 0; c < chips; ++c) {
    const la::Vector z = canonical.sample_z(rng);
    for (std::size_t s = 0; s < sites; ++s) {
      const std::size_t g =
          grid.index_at(set.sites[s].first, set.sites[s].second);
      set.thickness(c, s) = canonical.thickness(g, z, rng.normal());
    }
  }
  return set;
}

namespace {

// Linear least squares for C(d) ~ a + b exp(-d/L) at fixed L; returns SSE
// and the coefficients.
struct ExpFit {
  double a = 0.0;
  double b = 0.0;
  double sse = 0.0;
};

ExpFit fit_at_length(const std::vector<std::pair<double, double>>& curve,
                     double length) {
  // Design matrix [1, e_i], normal equations (2x2).
  double s11 = 0.0, s1e = 0.0, see = 0.0, s1y = 0.0, sey = 0.0;
  for (const auto& [d, y] : curve) {
    const double e = std::exp(-d / length);
    s11 += 1.0;
    s1e += e;
    see += e * e;
    s1y += y;
    sey += e * y;
  }
  const double det = s11 * see - s1e * s1e;
  ExpFit fit;
  if (std::fabs(det) < 1e-14) {
    fit.a = s1y / s11;
    fit.b = 0.0;
  } else {
    fit.a = (see * s1y - s1e * sey) / det;
    fit.b = (s11 * sey - s1e * s1y) / det;
  }
  for (const auto& [d, y] : curve) {
    const double r = y - (fit.a + fit.b * std::exp(-d / length));
    fit.sse += r * r;
  }
  return fit;
}

}  // namespace

ExtractionResult extract_correlation(const MeasurementSet& data,
                                     const ExtractionOptions& options) {
  const std::size_t chips = data.thickness.rows();
  const std::size_t sites = data.thickness.cols();
  require(chips >= 10, "extract_correlation: need at least 10 chips");
  require(sites >= 3, "extract_correlation: need at least 3 sites");
  require(data.sites.size() == sites,
          "extract_correlation: site coordinate count mismatch");
  require(data.die_width > 0.0 && data.die_height > 0.0,
          "extract_correlation: die size missing");
  require(options.distance_bins >= 3,
          "extract_correlation: need at least 3 distance bins");

  ExtractionResult out;

  // Per-site systematic means (absorbs the nominal and any wafer pattern).
  std::vector<double> site_mean(sites, 0.0);
  for (std::size_t s = 0; s < sites; ++s) {
    double sum = 0.0;
    for (std::size_t c = 0; c < chips; ++c) sum += data.thickness(c, s);
    site_mean[s] = sum / static_cast<double>(chips);
  }
  out.nominal = 0.0;
  for (double m : site_mean) out.nominal += m;
  out.nominal /= static_cast<double>(sites);

  // Centered data y(c, s) and total variance.
  la::Matrix y(chips, sites);
  double total_var = 0.0;
  for (std::size_t c = 0; c < chips; ++c) {
    for (std::size_t s = 0; s < sites; ++s) {
      y(c, s) = data.thickness(c, s) - site_mean[s];
      total_var += y(c, s) * y(c, s);
    }
  }
  total_var /= static_cast<double>(chips * sites - 1);

  // Empirical same-chip cross-site covariance binned by distance:
  // E[y_cs y_cs'] = vg + vsp * rho(d(s, s')).
  double max_d = 0.0;
  for (std::size_t s1 = 0; s1 < sites; ++s1)
    for (std::size_t s2 = s1 + 1; s2 < sites; ++s2)
      max_d = std::max(max_d, std::hypot(data.sites[s1].first -
                                             data.sites[s2].first,
                                         data.sites[s1].second -
                                             data.sites[s2].second));
  require(max_d > 0.0, "extract_correlation: all sites are co-located");

  const std::size_t nbins = options.distance_bins;
  std::vector<double> bin_sum(nbins, 0.0);
  std::vector<double> bin_count(nbins, 0.0);
  for (std::size_t s1 = 0; s1 < sites; ++s1) {
    for (std::size_t s2 = s1 + 1; s2 < sites; ++s2) {
      const double d = std::hypot(
          data.sites[s1].first - data.sites[s2].first,
          data.sites[s1].second - data.sites[s2].second);
      const auto bin = std::min(
          nbins - 1, static_cast<std::size_t>(d / max_d *
                                              static_cast<double>(nbins)));
      double cov = 0.0;
      for (std::size_t c = 0; c < chips; ++c) cov += y(c, s1) * y(c, s2);
      cov /= static_cast<double>(chips - 1);
      bin_sum[bin] += cov;
      bin_count[bin] += 1.0;
    }
  }
  std::vector<std::pair<double, double>> curve;
  for (std::size_t b = 0; b < nbins; ++b) {
    if (bin_count[b] == 0.0) continue;
    const double center =
        (static_cast<double>(b) + 0.5) / static_cast<double>(nbins) * max_d;
    curve.emplace_back(center, bin_sum[b] / bin_count[b]);
  }
  require(curve.size() >= 3, "extract_correlation: too few populated bins");

  // Fit C(d) = vg + vsp * exp(-d/L) by scanning L (log grid).
  const double die = std::max(data.die_width, data.die_height);
  double best_sse = 1e300;
  double best_length = options.rho_lo * die;
  ExpFit best_fit;
  const int scan = 160;
  for (int i = 0; i <= scan; ++i) {
    const double frac =
        options.rho_lo *
        std::pow(options.rho_hi / options.rho_lo,
                 static_cast<double>(i) / static_cast<double>(scan));
    const double length = frac * die;
    const ExpFit fit = fit_at_length(curve, length);
    if (fit.sse < best_sse && fit.b >= 0.0) {
      best_sse = fit.sse;
      best_length = length;
      best_fit = fit;
    }
  }

  const double vg = std::max(0.0, best_fit.a);
  const double vsp = std::max(0.0, best_fit.b);
  const double veps = std::max(0.0, total_var - vg - vsp);
  out.sigma_global = std::sqrt(vg);
  out.sigma_spatial = std::sqrt(vsp);
  out.sigma_independent = std::sqrt(veps);
  out.rho_dist = best_length / die;
  out.fit_rmse = std::sqrt(best_sse / static_cast<double>(curve.size()));
  // Report the correlated-part correlation curve rho(d) = (C - vg)/vsp.
  out.correlation_curve.reserve(curve.size());
  for (const auto& [d, cov] : curve)
    out.correlation_curve.emplace_back(
        d, (vsp > 0.0) ? (cov - vg) / vsp : 0.0);
  return out;
}

la::Matrix project_to_psd(const la::Matrix& symmetric, double floor) {
  require(floor >= 0.0, "project_to_psd: floor must be non-negative");
  const auto eig = la::eigen_symmetric(symmetric);
  const std::size_t n = symmetric.rows();
  la::Matrix out(n, n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double w = std::max(floor, eig.values[k]);
    if (w == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double vik = eig.vectors(i, k) * w;
      for (std::size_t j = 0; j < n; ++j)
        out(i, j) += vik * eig.vectors(j, k);
    }
  }
  return out;
}

}  // namespace obd::var
