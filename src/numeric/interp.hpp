// Interpolation utilities and the regular-grid 2-D lookup table used by the
// hybrid analytical/table look-up method (Section IV-E of the paper).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace obd::num {

/// Piecewise-linear interpolation of (xs, ys) at x. xs must be strictly
/// increasing; x outside the range is extrapolated from the edge segment.
double lerp_1d(const std::vector<double>& xs, const std::vector<double>& ys,
               double x);

/// Dense lookup table on a regular (x, y) grid with bilinear interpolation.
///
/// The hybrid reliability method stores, per functional block, the value of
/// the double integral of eq. (31) on an n_alpha x n_b grid over the indices
/// (ln(t/alpha), b); queries are answered by bilinear interpolation
/// (Section IV-E; n_alpha = n_b = 100 in the paper).
class LookupTable2D {
 public:
  /// Tabulates f over [xlo, xhi] x [ylo, yhi] with nx x ny samples
  /// (inclusive of the boundary).
  LookupTable2D(double xlo, double xhi, std::size_t nx, double ylo,
                double yhi, std::size_t ny,
                const std::function<double(double, double)>& f);

  /// Constructs from precomputed values (row-major [ix * ny + iy]) —
  /// the deserialization path.
  LookupTable2D(double xlo, double xhi, std::size_t nx, double ylo,
                double yhi, std::size_t ny, std::vector<double> values);

  /// Raw sample values, row-major [ix * ny + iy] — the serialization path.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Bilinear interpolation; queries outside the grid are clamped to it.
  [[nodiscard]] double at(double x, double y) const;

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] double xlo() const { return xlo_; }
  [[nodiscard]] double xhi() const { return xhi_; }
  [[nodiscard]] double ylo() const { return ylo_; }
  [[nodiscard]] double yhi() const { return yhi_; }

 private:
  double xlo_, xhi_, ylo_, yhi_;
  std::size_t nx_, ny_;
  double dx_, dy_;
  std::vector<double> values_;  // row-major [ix * ny + iy]
};

}  // namespace obd::num
