// Wall-clock stopwatch used by the benchmark harnesses to report the
// runtime/speed-up columns of the paper's Table III.
#pragma once

#include <chrono>

namespace obd {

/// Monotonic wall-clock timer. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace obd
