// Tests for the runtime-dispatched SIMD kernel layer: dispatch/config
// parsing, the per-kernel exactness contracts of kernels.hpp (bit-identity
// or documented ULP bounds between the scalar and AVX2 tables), the
// red-black SOR sweep, and the warm-started thermal retries.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "chip/design.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/parallel.hpp"
#include "core/montecarlo.hpp"
#include "core/problem.hpp"
#include "power/power.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"
#include "thermal/solver.hpp"
#include "variation/model.hpp"

namespace obd {
namespace {

// Restores the process-wide dispatch level (and the OBDREL_SIMD variable)
// on scope exit so tests that flip global state cannot leak into others.
struct DispatchGuard {
  simd::Level saved = simd::active_level();
  ~DispatchGuard() {
    unsetenv("OBDREL_SIMD");
    simd::set_level(saved);
  }
};

// ------------------------------------------------------------------------
// Dispatch configuration

TEST(SimdDispatch, ConfigureAcceptsTheFourLevels) {
  DispatchGuard guard;
  simd::configure("scalar");
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  // "auto" picks the widest tier the host/build can run.
  simd::configure("auto");
  EXPECT_EQ(simd::active_level(),
            simd::can_use_avx512()
                ? simd::Level::kAvx512
                : simd::can_use_avx2() ? simd::Level::kAvx2
                                       : simd::Level::kScalar);
  if (simd::can_use_avx2()) {
    simd::configure("avx2");
    EXPECT_EQ(simd::active_level(), simd::Level::kAvx2);
  } else {
    EXPECT_THROW(
        {
          try {
            simd::configure("avx2");
          } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::kConfig);
            throw;
          }
        },
        Error);
  }
  if (simd::can_use_avx512()) {
    simd::configure("avx512");
    EXPECT_EQ(simd::active_level(), simd::Level::kAvx512);
  } else {
    EXPECT_THROW(
        {
          try {
            simd::configure("avx512");
          } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::kConfig);
            throw;
          }
        },
        Error);
  }
}

TEST(SimdDispatch, ConfigureRejectsUnknownSpec) {
  DispatchGuard guard;
  const simd::Level before = simd::active_level();
  try {
    simd::configure("sse9");
    FAIL() << "configure accepted a bogus level";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_NE(std::string(e.what()).find("sse9"), std::string::npos);
  }
  // A rejected spec must not change the active level.
  EXPECT_EQ(simd::active_level(), before);
}

TEST(SimdDispatch, EnvVariableParsesAndRejects) {
  DispatchGuard guard;
  setenv("OBDREL_SIMD", "scalar", 1);
  simd::init_from_env();
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);

  setenv("OBDREL_SIMD", "turbo", 1);
  try {
    simd::init_from_env();
    FAIL() << "init_from_env accepted a bogus level";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    // The error must name the environment variable, not just the value.
    EXPECT_NE(std::string(e.what()).find("OBDREL_SIMD"), std::string::npos);
  }

  // Unset: keeps an explicit earlier choice instead of resetting to auto.
  unsetenv("OBDREL_SIMD");
  simd::configure("scalar");
  simd::init_from_env();
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
}

// ------------------------------------------------------------------------
// Kernel table equality: scalar vs each vector tier. The same contract
// suite runs against the AVX2 and the AVX-512 tables (parameterized);
// unavailable tiers skip with the host capability in the message.

class SimdKernelPair : public ::testing::TestWithParam<simd::Level> {
 protected:
  void SetUp() override {
    if (GetParam() == simd::Level::kAvx512) {
      if (!simd::can_use_avx512())
        GTEST_SKIP() << "AVX-512F/DQ unavailable on this host/build";
      v_ = simd::detail::kAvx512Kernels;
    } else {
      if (!simd::can_use_avx2())
        GTEST_SKIP() << "AVX2+FMA unavailable on this host/build";
      v_ = simd::detail::kAvx2Kernels;
    }
  }
  const simd::KernelTable& s_ = simd::detail::kScalarKernels;
  simd::KernelTable v_{};  ///< the vector table under test (copied pointers)
};

INSTANTIATE_TEST_SUITE_P(
    VectorTiers, SimdKernelPair,
    ::testing::Values(simd::Level::kAvx2, simd::Level::kAvx512),
    [](const ::testing::TestParamInfo<simd::Level>& info) {
      return std::string(simd::to_string(info.param));
    });

TEST_P(SimdKernelPair, DotCountsIsBitIdentical) {
  stats::Rng rng(101);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{31}, std::size_t{64}, std::size_t{1000},
        std::size_t{1001}, std::size_t{1002}, std::size_t{1003}}) {
    std::vector<std::uint32_t> c(n);
    std::vector<double> e(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix small counts with values near 2^32 - 1 to exercise the exact
      // uint32 -> double conversion in the vector path.
      c[i] = (i % 5 == 0) ? 4294967290u + static_cast<std::uint32_t>(i % 5)
                          : static_cast<std::uint32_t>(rng.uniform() * 1e6);
      e[i] = std::exp(-6.0 * rng.uniform());
    }
    const double a = s_.dot_counts(c.data(), e.data(), n);
    const double b = v_.dot_counts(c.data(), e.data(), n);
    EXPECT_EQ(a, b) << "n = " << n;
  }
}

TEST_P(SimdKernelPair, DotCountsMatchesFourLaneReference) {
  // Pin the documented lane structure itself, not just cross-level
  // agreement: lane l sums elements 4j + l, tail into lane 0, combined as
  // (a0 + a2) + (a1 + a3).
  const std::size_t n = 1003;
  std::vector<std::uint32_t> c(n);
  std::vector<double> e(n);
  stats::Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = static_cast<std::uint32_t>(rng.uniform() * 1e9);
    e[i] = rng.normal();
  }
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    a0 += static_cast<double>(c[k]) * e[k];
    a1 += static_cast<double>(c[k + 1]) * e[k + 1];
    a2 += static_cast<double>(c[k + 2]) * e[k + 2];
    a3 += static_cast<double>(c[k + 3]) * e[k + 3];
  }
  for (; k < n; ++k) a0 += static_cast<double>(c[k]) * e[k];
  const double ref = (a0 + a2) + (a1 + a3);
  EXPECT_EQ(s_.dot_counts(c.data(), e.data(), n), ref);
  EXPECT_EQ(v_.dot_counts(c.data(), e.data(), n), ref);
}

TEST_P(SimdKernelPair, FillBinFactorsStaysNearScalarAndExactExp) {
  const double gb = -7.25;
  const double x_lo = 1.8;
  for (const std::size_t bins :
       {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{512}, std::size_t{1000}}) {
    const double step = 0.8 / static_cast<double>(std::max<std::size_t>(
                                  bins, std::size_t{2}));
    std::vector<double> a(bins);
    std::vector<double> b(bins);
    s_.fill_bin_factors(gb, x_lo, step, bins, a.data());
    v_.fill_bin_factors(gb, x_lo, step, bins, b.data());
    for (std::size_t i = 0; i < bins; ++i) {
      const double exact = std::exp(
          gb * (x_lo + (static_cast<double>(i) + 0.5) * step));
      EXPECT_LE(std::abs(b[i] - a[i]) / exact, 1e-12)
          << "bins " << bins << " bin " << i;
      // The vector recurrence has shorter rounding chains than the scalar
      // one, so it must track the exact exponential at least as tightly.
      EXPECT_LE(std::abs(b[i] - exact) / exact, 1e-13)
          << "bins " << bins << " bin " << i;
    }
  }
}

TEST_P(SimdKernelPair, NormalCdfBatchMatchesScalarReference) {
  std::vector<double> z;
  for (double x = -40.0; x <= 40.0; x += 0.0097) z.push_back(x);
  std::vector<double> a(z.size());
  std::vector<double> b(z.size());
  s_.normal_cdf_batch(z.data(), z.size(), a.data());
  v_.normal_cdf_batch(z.data(), z.size(), b.data());
  for (std::size_t i = 0; i < z.size(); ++i) {
    // The scalar batch must be bit-identical to stats::normal_cdf — the
    // binned sampler's scalar path relies on it for seed-stable draws.
    ASSERT_EQ(a[i], stats::normal_cdf(z[i])) << "z = " << z[i];
    if (a[i] > 1e-300 && a[i] < 1.0) {
      EXPECT_LE(std::abs(b[i] - a[i]) / a[i], 1e-12) << "z = " << z[i];
    }
  }
  // Saturation: the polynomial path must hit the limits exactly where the
  // scalar erfc underflows/rounds to them.
  const double far[] = {-45.0, -40.5, 40.5, 45.0};
  double sat[4];
  v_.normal_cdf_batch(far, 4, sat);
  EXPECT_EQ(sat[0], 0.0);
  EXPECT_EQ(sat[1], 0.0);
  EXPECT_EQ(sat[2], 1.0);
  EXPECT_EQ(sat[3], 1.0);
  // In-place evaluation (out == z) is part of the contract.
  std::vector<double> inplace = z;
  v_.normal_cdf_batch(inplace.data(), inplace.size(), inplace.data());
  for (std::size_t i = 0; i < z.size(); ++i)
    ASSERT_EQ(inplace[i], b[i]) << "z = " << z[i];
}

TEST_P(SimdKernelPair, MatmulBitIdenticalAcrossLevelsAndToNaiveLoop) {
  stats::Rng rng(31);
  struct Shape {
    std::size_t m, k, n;
  };
  for (const Shape sh : {Shape{5, 7, 9}, Shape{17, 33, 8}, Shape{1, 300, 1},
                         Shape{48, 48, 48}}) {
    std::vector<double> a(sh.m * sh.k);
    std::vector<double> b(sh.k * sh.n);
    for (double& x : a) x = rng.uniform() < 0.2 ? 0.0 : rng.normal();
    for (double& x : b) x = rng.normal();
    // Historical naive ikj loop with the a == 0.0 skip.
    std::vector<double> ref(sh.m * sh.n, 0.0);
    for (std::size_t i = 0; i < sh.m; ++i)
      for (std::size_t kk = 0; kk < sh.k; ++kk) {
        const double av = a[i * sh.k + kk];
        if (av == 0.0) continue;
        for (std::size_t j = 0; j < sh.n; ++j)
          ref[i * sh.n + j] += av * b[kk * sh.n + j];
      }
    std::vector<double> outs(sh.m * sh.n, 0.0);
    std::vector<double> outv(sh.m * sh.n, 0.0);
    s_.matmul(a.data(), b.data(), outs.data(), sh.m, sh.k, sh.n);
    v_.matmul(a.data(), b.data(), outv.data(), sh.m, sh.k, sh.n);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(outs[i], ref[i]) << sh.m << "x" << sh.k << "x" << sh.n
                                 << " element " << i;
      ASSERT_EQ(outv[i], ref[i]) << sh.m << "x" << sh.k << "x" << sh.n
                                 << " element " << i;
    }
  }
}

TEST_P(SimdKernelPair, GramAatBitIdentical) {
  stats::Rng rng(57);
  for (const auto& [n, k] : {std::pair<std::size_t, std::size_t>{9, 13},
                            {1, 5},
                            {25, 3},
                            {40, 40}}) {
    std::vector<double> a(n * k);
    for (double& x : a) x = rng.normal();
    std::vector<double> gs(n * n, -1.0);
    std::vector<double> gv(n * n, -1.0);
    s_.gram_aat(a.data(), gs.data(), n, k);
    v_.gram_aat(a.data(), gv.data(), n, k);
    for (std::size_t i = 0; i < n * n; ++i)
      ASSERT_EQ(gs[i], gv[i]) << n << "x" << k << " element " << i;
  }
}

TEST_P(SimdKernelPair, MatvecWithinDotProductRounding) {
  stats::Rng rng(93);
  const std::size_t rows = 37;
  const std::size_t cols = 101;
  std::vector<double> a(rows * cols);
  std::vector<double> x(cols);
  for (double& u : a) u = rng.normal();
  for (double& u : x) u = rng.normal();
  std::vector<double> ys(rows, 0.0);
  std::vector<double> yv(rows, 0.0);
  s_.matvec(a.data(), x.data(), ys.data(), rows, cols);
  v_.matvec(a.data(), x.data(), yv.data(), rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    // Scalar path: bit-identical to the historical single-chain loop.
    double ref = 0.0;
    double mag = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      ref += a[r * cols + c] * x[c];
      mag += std::abs(a[r * cols + c] * x[c]);
    }
    ASSERT_EQ(ys[r], ref) << "row " << r;
    EXPECT_LE(std::abs(yv[r] - ref), 1e-13 * std::max(mag, 1.0))
        << "row " << r;
  }
}

TEST_P(SimdKernelPair, ClenshawBatchBitIdenticalAndMatchesDirectSum) {
  stats::Rng rng(77);
  for (const std::size_t m :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{15}, std::size_t{16}, std::size_t{17}, std::size_t{19}}) {
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
          std::size_t{8}, std::size_t{13}, std::size_t{25}}) {
      std::vector<double> coeffs(n * m);
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t p = 0; p < m; ++p)
          coeffs[k * m + p] =
              rng.normal() / (1.0 + static_cast<double>(k * k));
      for (const double u : {-1.0, -0.73, 0.0, 0.31, 1.0}) {
        std::vector<double> outs(m, -1.0);
        std::vector<double> outv(m, -1.0);
        s_.clenshaw_batch(coeffs.data(), n, m, u, outs.data());
        v_.clenshaw_batch(coeffs.data(), n, m, u, outv.data());
        for (std::size_t p = 0; p < m; ++p) {
          // Bit-identical across tiers: lanes map to independent pencils,
          // so width never changes any rounding. The surrogate's
          // certified envelopes rest on this.
          ASSERT_EQ(outs[p], outv[p])
              << "m=" << m << " n=" << n << " u=" << u << " pencil " << p;
          // And the value is the Chebyshev sum it claims to be.
          double tk2 = 1.0, tk1 = u;
          double ref = coeffs[p];
          double mag = std::abs(coeffs[p]);
          if (n > 1) {
            ref += coeffs[m + p] * u;
            mag += std::abs(coeffs[m + p]);
          }
          for (std::size_t k = 2; k < n; ++k) {
            const double tk = 2.0 * u * tk1 - tk2;
            ref += coeffs[k * m + p] * tk;
            mag += std::abs(coeffs[k * m + p]);
            tk2 = tk1;
            tk1 = tk;
          }
          EXPECT_NEAR(outs[p], ref, 1e-12 * std::max(mag, 1.0))
              << "m=" << m << " n=" << n << " u=" << u << " pencil " << p;
        }
      }
    }
  }
  // n == 0 zero-fills regardless of the garbage in out.
  double out3[3] = {-1.0, -1.0, -1.0};
  v_.clenshaw_batch(nullptr, 0, 3, 0.5, out3);
  EXPECT_EQ(out3[0], 0.0);
  EXPECT_EQ(out3[1], 0.0);
  EXPECT_EQ(out3[2], 0.0);
}

// ------------------------------------------------------------------------
// Per-kernel tier composition under "auto" vs forced levels

TEST(SimdDispatch, AutoComposesPerKernelTiersButForcedLevelsAreWhole) {
  DispatchGuard guard;
  simd::configure("auto");
  const simd::Level widest = simd::active_level();
  if (widest == simd::Level::kAvx512) {
    // dot_counts is capped at AVX2 under auto: its AVX-512 fold is
    // load-bound and measures slower (see kAutoCap in dispatch.cpp and
    // the bench gate that keeps this ranking honest).
    EXPECT_EQ(simd::kernel_level(simd::KernelId::kDotCounts),
              simd::Level::kAvx2);
    EXPECT_EQ(simd::kernels().dot_counts,
              simd::detail::kAvx2Kernels.dot_counts);
    // Every other kernel still runs the widest tier.
    EXPECT_EQ(simd::kernel_level(simd::KernelId::kClenshawBatch),
              simd::Level::kAvx512);
    EXPECT_EQ(simd::kernels().clenshaw_batch,
              simd::detail::kAvx512Kernels.clenshaw_batch);
    EXPECT_EQ(simd::kernels().matmul, simd::detail::kAvx512Kernels.matmul);
    EXPECT_EQ(simd::kernels().fill_bin_factors,
              simd::detail::kAvx512Kernels.fill_bin_factors);
  } else {
    // No tier exceeds its cap: composition is the identity.
    EXPECT_EQ(simd::kernel_level(simd::KernelId::kDotCounts), widest);
    EXPECT_EQ(simd::kernel_level(simd::KernelId::kClenshawBatch), widest);
  }
  // A forced level selects its whole uncomposed table, caps ignored —
  // forced runs must exercise exactly one tier.
  if (simd::can_use_avx512()) {
    simd::set_level(simd::Level::kAvx512);
    EXPECT_EQ(simd::kernel_level(simd::KernelId::kDotCounts),
              simd::Level::kAvx512);
    EXPECT_EQ(simd::kernels().dot_counts,
              simd::detail::kAvx512Kernels.dot_counts);
  }
  simd::set_level(simd::Level::kScalar);
  EXPECT_EQ(simd::kernel_level(simd::KernelId::kDotCounts),
            simd::Level::kScalar);
  EXPECT_EQ(simd::kernels().dot_counts,
            simd::detail::kScalarKernels.dot_counts);
}

// ------------------------------------------------------------------------
// Red-black SOR sweep

TEST(RedBlackSweep, MatchesLexicographicWithinSolverTolerance) {
  const chip::Design d = chip::make_ev6_design();
  const power::PowerMap map = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 24;
  tp.tolerance = 1e-10;
  const auto lex = thermal::solve_thermal(d, map, tp);
  tp.sweep = thermal::SweepOrder::kRedBlack;
  const auto rb = thermal::solve_thermal(d, map, tp);
  ASSERT_EQ(lex.cell_temps_c.size(), rb.cell_temps_c.size());
  for (std::size_t i = 0; i < lex.cell_temps_c.size(); ++i)
    EXPECT_NEAR(rb.cell_temps_c[i], lex.cell_temps_c[i], 1e-5)
        << "cell " << i;
  for (std::size_t b = 0; b < lex.block_temps_c.size(); ++b)
    EXPECT_NEAR(rb.block_temps_c[b], lex.block_temps_c[b], 1e-5)
        << "block " << b;
}

TEST(RedBlackSweep, ThreadInvariant) {
  const chip::Design d = chip::make_ev6_design();
  const power::PowerMap map = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 24;
  tp.sweep = thermal::SweepOrder::kRedBlack;
  par::set_threads(1);
  const auto serial = thermal::solve_thermal(d, map, tp);
  par::set_threads(3);
  const auto pooled = thermal::solve_thermal(d, map, tp);
  par::set_threads(0);
  ASSERT_EQ(serial.cell_temps_c.size(), pooled.cell_temps_c.size());
  for (std::size_t i = 0; i < serial.cell_temps_c.size(); ++i)
    ASSERT_EQ(serial.cell_temps_c[i], pooled.cell_temps_c[i])
        << "cell " << i;
}

// ------------------------------------------------------------------------
// Warm-started thermal retries

TEST(ThermalWarmStart, RetriesResumeFromThePartialIterate) {
  diagnostics().clear();
  fault::disarm();
  fault::arm("thermal.sor");  // first solve fails once, then recovers
  const chip::Design d = chip::make_ev6_design();
  thermal::ThermalParams tp;
  tp.resolution = 16;
  const auto profile = thermal::power_thermal_fixed_point(d, {}, tp, 2);
  fault::disarm();
  EXPECT_TRUE(profile.converged);
  // The damped retry must have resumed from the failed attempt's iterate
  // and said so through the non-degrading stat channel.
  bool saw_stat = false;
  for (const auto& s : diagnostics().stats())
    if (s.site == "thermal.warm_start") {
      saw_stat = true;
      EXPECT_NE(s.message.find("sweeps retained"), std::string::npos);
    }
  EXPECT_TRUE(saw_stat);
  diagnostics().clear();
}

TEST(ThermalWarmStart, SolveThermalHandsBackStateEvenOnFailure) {
  const chip::Design d = chip::make_ev6_design();
  const power::PowerMap map = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 16;
  tp.max_iterations = 3;  // far too few: must throw kNonconvergence
  thermal::SorState state;
  try {
    (void)thermal::solve_thermal(d, map, tp, &state);
    FAIL() << "expected kNonconvergence";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonconvergence);
  }
  ASSERT_EQ(state.rise.size(), tp.resolution * tp.resolution);
  EXPECT_EQ(state.iterations, 3u);
  // Warm-starting from the partial iterate must cost fewer sweeps than a
  // cold solve with the same parameters.
  tp.max_iterations = 50000;
  thermal::SorState cold;
  (void)thermal::solve_thermal(d, map, tp, &cold);
  thermal::SorState warm = state;
  (void)thermal::solve_thermal(d, map, tp, &warm);
  EXPECT_LT(warm.iterations, cold.iterations);
}

// ------------------------------------------------------------------------
// End-to-end: Monte Carlo agreement across dispatch levels

TEST(SimdEndToEnd, BinnedMonteCarloAgreesAcrossDispatchLevels) {
  if (!simd::can_use_avx2())
    GTEST_SKIP() << "AVX2+FMA unavailable on this host/build";
  DispatchGuard guard;
  const chip::Design d = chip::make_synthetic_design(
      "SIMD", {.devices = 30000, .block_count = 4, .die_width = 5.0,
               .die_height = 5.0, .seed = 11});
  const std::vector<double> temps(d.blocks.size(), 80.0);
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 8;
  const auto problem = core::ReliabilityProblem::build(
      d, var::VariationBudget{}, core::AnalyticReliabilityModel{}, temps,
      1.2, opts);

  simd::set_level(simd::Level::kScalar);
  const core::MonteCarloAnalyzer mc_scalar(
      problem,
      {.chip_samples = 40, .sampling = core::DeviceSampling::kBinned});
  const double t = mc_scalar.lifetime_at(0.01);
  const double f_scalar = mc_scalar.failure_probability(t);
  const double se = mc_scalar.failure_std_error(t);

  simd::set_level(simd::Level::kAvx2);
  const core::MonteCarloAnalyzer mc_avx2(
      problem,
      {.chip_samples = 40, .sampling = core::DeviceSampling::kBinned});
  const double f_avx2 = mc_avx2.failure_probability(t);

  // The bin-edge CDFs differ by ~1e-12 relative between levels, so the
  // binomial draws almost surely coincide; a generous statistical band
  // covers the astronomically rare draw flip without ever hiding a real
  // kernel bug.
  EXPECT_LE(std::abs(f_avx2 - f_scalar), std::max(6.0 * se, 1e-9));

  if (simd::can_use_avx512()) {
    simd::set_level(simd::Level::kAvx512);
    const core::MonteCarloAnalyzer mc_avx512(
        problem,
        {.chip_samples = 40, .sampling = core::DeviceSampling::kBinned});
    const double f_avx512 = mc_avx512.failure_probability(t);
    EXPECT_LE(std::abs(f_avx512 - f_scalar), std::max(6.0 * se, 1e-9));
  }
}

}  // namespace
}  // namespace obd
