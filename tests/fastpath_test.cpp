// Tests for the algorithmic fast paths: the binned device sampler, the
// batched F(t) sweep kernel, the displacement-table covariance, the
// truncated eigensolver, and the shared truncation/Gram helpers they are
// built from.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "chip/design.hpp"
#include "common/error.hpp"
#include "core/device_model.hpp"
#include "core/montecarlo.hpp"
#include "core/problem.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"
#include "stats/special.hpp"
#include "variation/model.hpp"

namespace obd {
namespace {

// ------------------------------------------------------------------------
// binomial_sample

TEST(BinomialSample, DegenerateCasesAreExact) {
  stats::Rng rng(1);
  EXPECT_EQ(stats::binomial_sample(0, 0.5, rng), 0u);
  EXPECT_EQ(stats::binomial_sample(100, 0.0, rng), 0u);
  EXPECT_EQ(stats::binomial_sample(100, 1.0, rng), 100u);
}

TEST(BinomialSample, MomentsMatchAcrossRegimes) {
  // Covers the inversion branch (np < 10), BTRS (np >= 10), and the
  // complement path (p > 0.5).
  struct Case {
    std::uint64_t n;
    double p;
  };
  const std::vector<Case> cases = {
      {50, 0.05}, {40, 0.3}, {10000, 0.47}, {1000000, 0.002}, {30, 0.9}};
  stats::Rng rng(20260806);
  const std::size_t reps = 20000;
  for (const auto& c : cases) {
    double sum = 0.0;
    double sumsq = 0.0;
    for (std::size_t i = 0; i < reps; ++i) {
      const double v =
          static_cast<double>(stats::binomial_sample(c.n, c.p, rng));
      ASSERT_LE(v, static_cast<double>(c.n));
      sum += v;
      sumsq += v * v;
    }
    const double mean = sum / static_cast<double>(reps);
    const double var =
        sumsq / static_cast<double>(reps) - mean * mean;
    const double m = static_cast<double>(c.n) * c.p;
    const double s2 = m * (1.0 - c.p);
    // 6-sigma band on the sample mean; generous band on the variance.
    EXPECT_NEAR(mean, m, 6.0 * std::sqrt(s2 / static_cast<double>(reps)))
        << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var / s2, 1.0, 0.10) << "n=" << c.n << " p=" << c.p;
  }
}

// ------------------------------------------------------------------------
// Re-anchored factor recurrence

TEST(FillBinFactors, TracksExactExpAtLargeBinCounts) {
  // The drift satellite: at a bin count far beyond the default, the
  // re-anchored recurrence must stay within ~an anchor interval's worth of
  // ulps of the exact exponential, while the pure recurrence drifts
  // linearly in the bin count.
  const std::size_t bins = 16384;
  const double x_lo = 1.8;
  const double step = 0.8 / static_cast<double>(bins);
  const double gb = -7.25;
  std::vector<double> out;
  core::detail::fill_bin_factors(gb, x_lo, step, bins, out);
  ASSERT_EQ(out.size(), bins);

  const double ratio = std::exp(gb * step);
  double pure = std::exp(gb * (x_lo + 0.5 * step));
  double max_reanchored = 0.0;
  double max_pure = 0.0;
  for (std::size_t k = 0; k < bins; ++k) {
    const double exact =
        std::exp(gb * (x_lo + (static_cast<double>(k) + 0.5) * step));
    max_reanchored =
        std::max(max_reanchored, std::abs(out[k] - exact) / exact);
    max_pure = std::max(max_pure, std::abs(pure - exact) / exact);
    pure *= ratio;
  }
  EXPECT_LT(max_reanchored, 1e-13);
  // The unanchored recurrence accumulates noticeably more drift over 16k
  // bins; the re-anchor must beat it by a wide margin.
  EXPECT_LT(max_reanchored, 0.25 * max_pure);
}

// ------------------------------------------------------------------------
// Binned device sampling

class FastPathMcFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "FP", {.devices = 60000, .block_count = 6, .die_width = 6.0,
               .die_height = 6.0, .seed = 41}));
    const std::vector<double> temps(design_->blocks.size(), 80.0);
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, core::AnalyticReliabilityModel{},
        temps, 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete design_;
    problem_ = nullptr;
    design_ = nullptr;
  }

  static chip::Design* design_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* FastPathMcFixture::design_ = nullptr;
core::ReliabilityProblem* FastPathMcFixture::problem_ = nullptr;

TEST_F(FastPathMcFixture, BinnedSamplerConservesDeviceCounts) {
  const std::size_t chips = 30;
  const core::MonteCarloAnalyzer per_device(
      *problem_, {.chip_samples = chips,
                  .sampling = core::DeviceSampling::kPerDevice});
  const core::MonteCarloAnalyzer binned(
      *problem_,
      {.chip_samples = chips, .sampling = core::DeviceSampling::kBinned});
  for (std::size_t j = 0; j < design_->blocks.size(); ++j) {
    const auto a = per_device.pooled_thickness_histogram(j);
    const auto b = binned.pooled_thickness_histogram(j);
    std::uint64_t ta = a.underflow + a.overflow;
    std::uint64_t tb = b.underflow + b.overflow;
    for (std::uint64_t c : a.counts) ta += c;
    for (std::uint64_t c : b.counts) tb += c;
    EXPECT_EQ(ta, tb) << "block " << j;
    EXPECT_EQ(ta, chips * design_->blocks[j].device_count) << "block " << j;
  }
}

TEST_F(FastPathMcFixture, BinnedSamplerMatchesPerDeviceDistribution) {
  // Chi-square homogeneity test between the pooled thickness histograms of
  // the two samplers. Both analyzers draw the same correlated grid means
  // per chip (the z draw precedes the device draws in the chip stream), so
  // conditional on the chips the two populations are samples from the same
  // per-cell Gaussians: the binned sampler is exactly multinomial in each
  // cell, and homogeneity must hold to statistical accuracy.
  const std::size_t chips = 40;
  const core::MonteCarloAnalyzer per_device(
      *problem_, {.chip_samples = chips,
                  .sampling = core::DeviceSampling::kPerDevice});
  const core::MonteCarloAnalyzer binned(
      *problem_,
      {.chip_samples = chips, .sampling = core::DeviceSampling::kBinned});

  for (std::size_t j = 0; j < design_->blocks.size(); ++j) {
    const auto a = per_device.pooled_thickness_histogram(j);
    const auto b = binned.pooled_thickness_histogram(j);
    ASSERT_EQ(a.counts.size(), b.counts.size());

    // Merge fine bins into categories with expected pooled count >= 20 so
    // the chi-square approximation is sound; under/overflow fold into the
    // edge categories.
    std::vector<double> ca;
    std::vector<double> cb;
    double accum_a = static_cast<double>(a.underflow);
    double accum_b = static_cast<double>(b.underflow);
    for (std::size_t k = 0; k < a.counts.size(); ++k) {
      accum_a += static_cast<double>(a.counts[k]);
      accum_b += static_cast<double>(b.counts[k]);
      if (accum_a + accum_b >= 40.0) {
        ca.push_back(accum_a);
        cb.push_back(accum_b);
        accum_a = 0.0;
        accum_b = 0.0;
      }
    }
    accum_a += static_cast<double>(a.overflow);
    accum_b += static_cast<double>(b.overflow);
    if (!ca.empty()) {
      ca.back() += accum_a;
      cb.back() += accum_b;
    }
    ASSERT_GE(ca.size(), 3u) << "block " << j;

    double na = 0.0;
    double nb = 0.0;
    for (double v : ca) na += v;
    for (double v : cb) nb += v;
    double chi2 = 0.0;
    for (std::size_t k = 0; k < ca.size(); ++k) {
      const double pooled = (ca[k] + cb[k]) / (na + nb);
      const double ea = na * pooled;
      const double eb = nb * pooled;
      if (ea > 0.0) chi2 += (ca[k] - ea) * (ca[k] - ea) / ea;
      if (eb > 0.0) chi2 += (cb[k] - eb) * (cb[k] - eb) / eb;
    }
    const double dof = static_cast<double>(ca.size() - 1);
    const double p_value = 1.0 - stats::gamma_p(dof / 2.0, chi2 / 2.0);
    EXPECT_GT(p_value, 1e-6) << "block " << j << " chi2 " << chi2
                             << " dof " << dof;
  }
}

TEST_F(FastPathMcFixture, BinnedFailureEstimateAgreesWithinError) {
  const std::size_t chips = 60;
  const core::MonteCarloAnalyzer per_device(
      *problem_, {.chip_samples = chips,
                  .sampling = core::DeviceSampling::kPerDevice});
  const core::MonteCarloAnalyzer binned(
      *problem_,
      {.chip_samples = chips, .sampling = core::DeviceSampling::kBinned});
  const double t = per_device.lifetime_at(0.01);
  const double fa = per_device.failure_probability(t);
  const double fb = binned.failure_probability(t);
  const double se = std::hypot(per_device.failure_std_error(t),
                               binned.failure_std_error(t));
  EXPECT_LE(std::abs(fa - fb), std::max(6.0 * se, 1e-12));
}

// ------------------------------------------------------------------------
// Batched F(t) sweeps

TEST_F(FastPathMcFixture, BatchedSweepIsBitIdenticalToScalarCalls) {
  const core::MonteCarloAnalyzer mc(*problem_, {.chip_samples = 50});
  std::vector<double> ts;
  for (double t = 3e7; t < 4e9; t *= 2.7) ts.push_back(t);

  const auto f = mc.failure_probabilities(ts);
  const auto se = mc.failure_std_errors(ts);
  const auto k3 = mc.kth_failure_probabilities(ts, 3);
  ASSERT_EQ(f.size(), ts.size());
  ASSERT_EQ(se.size(), ts.size());
  ASSERT_EQ(k3.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(f[i], mc.failure_probability(ts[i])) << "point " << i;
    EXPECT_EQ(se[i], mc.failure_std_error(ts[i])) << "point " << i;
    EXPECT_EQ(k3[i], mc.kth_failure_probability(ts[i], 3)) << "point " << i;
  }
}

TEST_F(FastPathMcFixture, BatchedSweepTracksLegacyReferenceEvaluation) {
  // The re-anchored factor tables may differ from the legacy incremental
  // recurrence only at the rounding level.
  const core::MonteCarloAnalyzer mc(*problem_, {.chip_samples = 50});
  std::vector<double> ts;
  for (double t = 3e7; t < 4e9; t *= 2.7) ts.push_back(t);
  const auto f = mc.failure_probabilities(ts);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const double ref = mc.failure_probability_reference(ts[i]);
    const double scale = std::max(std::abs(ref), 1e-300);
    EXPECT_LE(std::abs(f[i] - ref) / scale, 1e-11) << "point " << i;
  }
}

TEST_F(FastPathMcFixture, EmptyAndSinglePointSweeps) {
  const core::MonteCarloAnalyzer mc(*problem_, {.chip_samples = 20});
  EXPECT_TRUE(mc.failure_probabilities({}).empty());
  EXPECT_TRUE(mc.failure_std_errors({}).empty());
  EXPECT_TRUE(mc.kth_failure_probabilities({}, 2).empty());

  const double t = 2e8;
  const auto one = mc.failure_probabilities(std::span<const double>(&t, 1));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front(), mc.failure_probability(t));

  const double bad = -1.0;
  EXPECT_THROW(
      (void)mc.failure_probabilities(std::span<const double>(&bad, 1)),
      Error);
}

// ------------------------------------------------------------------------
// Covariance displacement table

TEST(CovarianceTable, BitIdenticalToPairwiseEvaluation) {
  const var::GridModel grid(7.0, 5.0, 9);
  const var::VariationBudget budget;
  const double rho_dist = 0.4;
  const double length = rho_dist * 7.0;
  const double vg = budget.sigma_global() * budget.sigma_global();
  const double vs = budget.sigma_spatial() * budget.sigma_spatial();
  for (const auto kernel : {var::CorrelationKernel::kExponential,
                            var::CorrelationKernel::kMatern32,
                            var::CorrelationKernel::kSpherical}) {
    const la::Matrix c = var::build_covariance(grid, budget, rho_dist, kernel);
    for (std::size_t i = 0; i < grid.cell_count(); ++i) {
      for (std::size_t j = 0; j < grid.cell_count(); ++j) {
        const double expected =
            vg + vs * var::kernel_correlation(kernel, grid.distance(i, j),
                                              length);
        ASSERT_EQ(c(i, j), expected) << "kernel " << static_cast<int>(kernel)
                                     << " (" << i << ", " << j << ")";
      }
    }
  }
}

// ------------------------------------------------------------------------
// Shared truncation helpers

TEST(TruncationHelpers, LeadingComponentCountRule) {
  const la::Vector values = {4.0, 3.0, 2.0, 1.0, 0.0, -0.5};
  // Total (clipped) is 10; keep while captured < share * total and the
  // next eigenvalue is positive.
  EXPECT_EQ(la::leading_component_count(values, 0.39), 1u);
  EXPECT_EQ(la::leading_component_count(values, 0.40), 1u);
  EXPECT_EQ(la::leading_component_count(values, 0.41), 2u);
  EXPECT_EQ(la::leading_component_count(values, 0.95), 4u);
  // share 1.0 keeps every positive component but never the zero/negative
  // tail.
  EXPECT_EQ(la::leading_component_count(values, 1.0), 4u);
  // Explicit-total overload.
  EXPECT_EQ(la::leading_component_count(values, 0.5, 10.0), 2u);
  // No positive mass -> zero components; callers decide how to clamp.
  EXPECT_EQ(la::leading_component_count({0.0, -1.0}, 0.9), 0u);
}

TEST(TruncationHelpers, PrincipalFactorMatchesManualLoop) {
  const la::Matrix a = [] {
    la::Matrix m(4, 4);
    stats::Rng rng(5);
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = i; j < 4; ++j) {
        m(i, j) = rng.normal();
        m(j, i) = m(i, j);
      }
    for (std::size_t i = 0; i < 4; ++i) m(i, i) += 4.0;  // make PSD-ish
    return m;
  }();
  const auto eig = la::eigen_symmetric(a);
  const std::size_t keep = 3;
  const la::Matrix f = la::principal_factor(eig, keep);
  ASSERT_EQ(f.rows(), 4u);
  ASSERT_EQ(f.cols(), keep);
  for (std::size_t k = 0; k < keep; ++k) {
    const double s = std::sqrt(std::max(0.0, eig.values[k]));
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(f(i, k), eig.vectors(i, k) * s);
  }
}

TEST(GramAat, BitIdenticalToTripleLoop) {
  la::Matrix a(7, 5);
  stats::Rng rng(77);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) a(i, k) = rng.normal();
  const la::Matrix g = la::gram_aat(a);
  ASSERT_EQ(g.rows(), 7u);
  ASSERT_EQ(g.cols(), 7u);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i; j < a.rows(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * a(j, k);
      EXPECT_EQ(g(i, j), s);
      EXPECT_EQ(g(j, i), s);
    }
  }
}

// ------------------------------------------------------------------------
// Truncated eigensolver

TEST(TruncatedEigen, MatchesDenseLeadingEigenpairs) {
  // Matern-3/2 covariance: fast spectral decay, well conditioned — the
  // truncated solver's target regime, large enough (n = 144) to exercise
  // the subspace iteration rather than the small-n dense fallback.
  const var::GridModel grid(8.0, 8.0, 12);
  const la::Matrix cov = var::build_covariance(
      grid, var::VariationBudget{}, 0.5, var::CorrelationKernel::kMatern32);
  const auto full = la::eigen_symmetric(cov);
  for (const double capture : {0.95, 0.999}) {
    const auto trunc = la::eigen_symmetric_truncated(cov, capture);
    ASSERT_GE(trunc.values.size(), 1u) << "capture " << capture;
    ASSERT_LE(trunc.values.size(), full.values.size());
    // The kept count must follow the shared truncation rule applied to the
    // full spectrum.
    EXPECT_EQ(trunc.values.size(),
              std::max<std::size_t>(
                  1, la::leading_component_count(full.values, capture)))
        << "capture " << capture;
    const double scale = std::max(1.0, full.values.front());
    for (std::size_t k = 0; k < trunc.values.size(); ++k) {
      EXPECT_NEAR(trunc.values[k], full.values[k], 1e-8 * scale)
          << "capture " << capture << " pair " << k;
      // Residual ||A v - lambda v|| pins the eigenvector without fighting
      // sign/degeneracy ambiguities.
      double res2 = 0.0;
      for (std::size_t i = 0; i < cov.rows(); ++i) {
        double av = 0.0;
        for (std::size_t j = 0; j < cov.cols(); ++j)
          av += cov(i, j) * trunc.vectors(j, k);
        const double r = av - trunc.values[k] * trunc.vectors(i, k);
        res2 += r * r;
      }
      EXPECT_LE(std::sqrt(res2), 1e-8 * scale)
          << "capture " << capture << " pair " << k;
    }
  }
}

TEST(TruncatedEigen, SmallMatricesFallBackToDenseExactly) {
  la::Matrix a(6, 6);
  stats::Rng rng(9);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = i; j < 6; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 6.0;
  const auto full = la::eigen_symmetric(a);
  const auto trunc = la::eigen_symmetric_truncated(a, 0.9);
  const std::size_t keep =
      std::max<std::size_t>(1, la::leading_component_count(full.values, 0.9));
  ASSERT_EQ(trunc.values.size(), keep);
  for (std::size_t k = 0; k < keep; ++k) {
    EXPECT_EQ(trunc.values[k], full.values[k]);
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_EQ(trunc.vectors(i, k), full.vectors(i, k));
  }
}

// ------------------------------------------------------------------------
// Bounding-box device assignment

TEST(AssignDevices, BoundingBoxScanMatchesFullScan) {
  const chip::Design design = chip::make_synthetic_design(
      "AD", {.devices = 5000, .block_count = 7, .die_width = 9.0,
             .die_height = 4.0, .seed = 23});
  const var::GridModel grid(design.width, design.height, 13);
  const auto layout = var::assign_devices(design, grid);
  ASSERT_EQ(layout.weights.size(), design.blocks.size());

  for (std::size_t b = 0; b < design.blocks.size(); ++b) {
    // Full-scan reference: every grid cell, ascending, exact overlap.
    const chip::Rect& rect = design.blocks[b].rect;
    std::vector<std::pair<std::size_t, double>> expected;
    double sum = 0.0;
    for (std::size_t g = 0; g < grid.cell_count(); ++g) {
      const double ov = rect.overlap(grid.cell_rect(g));
      if (ov <= 0.0) continue;
      expected.emplace_back(g, ov / rect.area());
      sum += ov / rect.area();
    }
    for (auto& [g, w] : expected) w /= sum;

    const auto& got = layout.weights[b];
    ASSERT_EQ(got.size(), expected.size()) << "block " << b;
    double total = 0.0;
    for (std::size_t e = 0; e < got.size(); ++e) {
      EXPECT_EQ(got[e].first, expected[e].first) << "block " << b;
      EXPECT_EQ(got[e].second, expected[e].second) << "block " << b;
      total += got[e].second;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "block " << b;
  }
}

}  // namespace
}  // namespace obd
