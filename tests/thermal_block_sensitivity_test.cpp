// Tests for the block-mode compact thermal model and the reliability
// sensitivity analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chip/design.hpp"
#include "common/error.hpp"
#include "core/sensitivity.hpp"
#include "power/power.hpp"
#include "thermal/block_model.hpp"
#include "thermal/solver.hpp"

namespace obd {
namespace {

TEST(SharedEdge, DetectsAbutment) {
  const chip::Rect a{0, 0, 2, 2};
  // Right neighbor sharing the full edge.
  EXPECT_DOUBLE_EQ(thermal::shared_edge_length(a, {2, 0, 2, 2}), 2.0);
  // Right neighbor sharing half the edge.
  EXPECT_DOUBLE_EQ(thermal::shared_edge_length(a, {2, 1, 2, 2}), 1.0);
  // Top neighbor.
  EXPECT_DOUBLE_EQ(thermal::shared_edge_length(a, {0.5, 2, 1, 1}), 1.0);
  // Diagonal/corner contact: zero-length edge.
  EXPECT_DOUBLE_EQ(thermal::shared_edge_length(a, {2, 2, 1, 1}), 0.0);
  // Disjoint.
  EXPECT_DOUBLE_EQ(thermal::shared_edge_length(a, {5, 5, 1, 1}), 0.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(thermal::shared_edge_length({2, 0, 2, 2}, a), 2.0);
}

TEST(BlockThermal, UniformPowerMatchesLumpedModel) {
  chip::Design d;
  d.name = "u";
  d.width = 8.0;
  d.height = 8.0;
  d.blocks.push_back({"a", {0, 0, 4, 8}, 10, 1.0, chip::UnitKind::kLogic, 0.5});
  d.blocks.push_back({"b", {4, 0, 4, 8}, 10, 1.0, chip::UnitKind::kLogic, 0.5});
  power::PowerMap map;
  map.block_watts = {32.0, 32.0};  // symmetric
  thermal::ThermalParams tp;
  const auto profile = thermal::solve_thermal_blocks(d, map, tp);
  // Symmetric problem: both blocks at ambient + P_total * R.
  EXPECT_NEAR(profile.block_temps_c[0],
              tp.ambient_c + 64.0 * tp.package_resistance, 1e-9);
  EXPECT_NEAR(profile.block_temps_c[0], profile.block_temps_c[1], 1e-9);
}

TEST(BlockThermal, TracksGridSolverOnEv6) {
  const chip::Design d = chip::make_ev6_design();
  const auto power = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 48;
  const auto grid = thermal::solve_thermal(d, power, tp);
  const auto block = thermal::solve_thermal_blocks(d, power, tp);
  // Block mode is a coarse model: expect agreement within a few degrees
  // and the same hottest/coolest ordering at the extremes.
  for (std::size_t j = 0; j < d.blocks.size(); ++j)
    EXPECT_NEAR(block.block_temps_c[j], grid.block_temps_c[j], 12.0)
        << d.blocks[j].name;
  const auto grid_hot = std::distance(
      grid.block_temps_c.begin(),
      std::max_element(grid.block_temps_c.begin(), grid.block_temps_c.end()));
  EXPECT_GT(block.block_temps_c[grid_hot],
            block.block_temps_c[0] /* L2, the cool block */);
}

TEST(BlockThermal, EnergyBalance) {
  const chip::Design d = chip::make_ev6_design();
  const auto power = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  const auto profile = thermal::solve_thermal_blocks(d, power, tp);
  double out = 0.0;
  for (std::size_t j = 0; j < d.blocks.size(); ++j)
    out += (profile.block_temps_c[j] - tp.ambient_c) / tp.package_resistance *
           d.blocks[j].rect.area() / d.die_area();
  EXPECT_NEAR(out, power.total(), 1e-6 * power.total());
}

TEST(BlockThermal, RejectsBadInput) {
  const chip::Design d = chip::make_benchmark(1);
  power::PowerMap map;
  map.block_watts = {1.0};
  EXPECT_THROW(thermal::solve_thermal_blocks(d, map), Error);
}

class SensitivityFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "S1", {.devices = 20000, .block_count = 4, .die_width = 5.0,
               .die_height = 5.0, .seed = 51}));
    model_ = new core::AnalyticReliabilityModel();
    temps_ = new std::vector<double>{98.0, 60.0, 70.0, 62.0};
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete temps_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    temps_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static std::vector<double>* temps_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* SensitivityFixture::design_ = nullptr;
core::AnalyticReliabilityModel* SensitivityFixture::model_ = nullptr;
std::vector<double>* SensitivityFixture::temps_ = nullptr;
core::ReliabilityProblem* SensitivityFixture::problem_ = nullptr;

TEST_F(SensitivityFixture, HotDominantBlockHasLargestSensitivity) {
  const auto sens = core::temperature_sensitivity(
      *problem_, *model_, core::kTenFaultsPerMillion);
  ASSERT_EQ(sens.size(), 4u);
  // Every block: cooling helps (non-negative sensitivity).
  for (const auto& s : sens) EXPECT_GE(s.lifetime_per_degree, -1e-9);
  // The hottest block (98 C) dominates both failure share and sensitivity.
  std::size_t hottest = 0;
  for (std::size_t j = 1; j < sens.size(); ++j)
    if (sens[j].temp_c > sens[hottest].temp_c) hottest = j;
  for (std::size_t j = 0; j < sens.size(); ++j) {
    if (j == hottest) continue;
    EXPECT_GE(sens[hottest].lifetime_per_degree,
              sens[j].lifetime_per_degree);
    EXPECT_GE(sens[hottest].failure_share, sens[j].failure_share);
  }
  // Failure shares sum to ~1.
  double share = 0.0;
  for (const auto& s : sens) share += s.failure_share;
  EXPECT_NEAR(share, 1.0, 1e-6);
}

TEST_F(SensitivityFixture, SensitivityMagnitudeMatchesModel) {
  // For a failure-dominating block, d ln t / d T ~ d ln alpha / d T
  // (lifetime scales with the dominant block's alpha).
  const auto sens = core::temperature_sensitivity(
      *problem_, *model_, core::kTenFaultsPerMillion);
  std::size_t hottest = 0;
  for (std::size_t j = 1; j < sens.size(); ++j)
    if (sens[j].temp_c > sens[hottest].temp_c) hottest = j;
  const double t = sens[hottest].temp_c;
  const double dlnalpha =
      (std::log(model_->alpha(t - 1.0, 1.2)) -
       std::log(model_->alpha(t + 1.0, 1.2))) /
      2.0;
  // Same order of magnitude, attenuated by the non-dominant blocks.
  EXPECT_GT(sens[hottest].lifetime_per_degree, 0.1 * dlnalpha);
  EXPECT_LT(sens[hottest].lifetime_per_degree, 1.2 * dlnalpha);
}

TEST_F(SensitivityFixture, VddSensitivityIsNegative) {
  const double s = core::vdd_sensitivity(*problem_, *model_,
                                         core::kTenFaultsPerMillion);
  // Raising Vdd shortens life; per +10 mV the exponential voltage model
  // gives about exp(-12 * 0.01) - 1 ~ -11%.
  EXPECT_LT(s, -0.05);
  EXPECT_GT(s, -0.25);
}

TEST_F(SensitivityFixture, RejectsBadDeltas) {
  EXPECT_THROW(core::temperature_sensitivity(*problem_, *model_, 1e-6, 0.0),
               Error);
  EXPECT_THROW(core::vdd_sensitivity(*problem_, *model_, 1e-6, -0.01),
               Error);
}

}  // namespace
}  // namespace obd
