#include "drm/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::drm {

std::vector<double> synthetic_workload(std::size_t steps,
                                       const WorkloadOptions& options,
                                       stats::Rng& rng) {
  require(steps > 0, "synthetic_workload: need at least one step");
  require(options.period_steps > 0.0,
          "synthetic_workload: period must be positive");
  require(options.burst_probability >= 0.0 &&
              options.idle_probability >= 0.0 &&
              options.burst_probability + options.idle_probability <= 1.0,
          "synthetic_workload: invalid burst/idle probabilities");
  std::vector<double> out;
  out.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double u = rng.uniform();
    double level;
    if (u < options.burst_probability) {
      level = options.burst_level;
    } else if (u < options.burst_probability + options.idle_probability) {
      level = options.idle_level;
    } else {
      const double phase = 2.0 * M_PI * static_cast<double>(i) /
                           options.period_steps;
      level = options.base +
              options.diurnal_amplitude * std::sin(phase) +
              options.noise * rng.normal();
    }
    out.push_back(std::clamp(level, 0.0, 1.0));
  }
  return out;
}

std::vector<double> workload_from_power_trace(
    const chip::Design& design, const std::vector<power::PowerMap>& trace,
    const power::PowerParams& params) {
  require(!trace.empty(), "workload_from_power_trace: empty trace");
  // Full-activity reference power.
  chip::Design full = design;
  for (auto& b : full.blocks) b.activity = 1.0;
  const double p_full = power::estimate_power(full, params).total();
  require(p_full > 0.0, "workload_from_power_trace: zero reference power");

  std::vector<double> out;
  out.reserve(trace.size());
  for (const auto& map : trace) {
    require(map.block_watts.size() == design.blocks.size(),
            "workload_from_power_trace: trace/design size mismatch");
    out.push_back(std::clamp(map.total() / p_full, 0.0, 1.0));
  }
  return out;
}

}  // namespace obd::drm
