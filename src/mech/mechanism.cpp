#include "mech/mechanism.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace obd::mech {

double FailureMechanism::block_hazard(std::size_t j, double t,
                                      const OperatingConditions& c) const {
  if (!(t > 0.0)) return 0.0;
  // Central finite difference on a relative step; the survival floor keeps
  // the ratio defined deep in the upper tail.
  const double h = std::max(1.0, 1e-6 * t);
  const double f0 = block_cdf(j, std::max(0.0, t - h), c);
  const double f1 = block_cdf(j, t + h, c);
  const double density = std::max(0.0, (f1 - f0) / (2.0 * h));
  const double survival = std::max(1e-300, 1.0 - block_cdf(j, t, c));
  return density / survival;
}

LognormalMechanism::LognormalMechanism(std::string name,
                                       const MechanismParams& params,
                                       double tref_c, double vref)
    : name_(std::move(name)),
      params_(params),
      tref_c_(tref_c),
      vref_(vref),
      log_t50_ref_s_(std::log(params.t50_years * kSecondsPerYear)) {
  require(params_.t50_years > 0.0 && std::isfinite(params_.t50_years),
          ErrorCode::kConfig,
          "mechanism '" + name_ + "': t50_years must be positive and finite");
  require(params_.sigma > 0.0 && std::isfinite(params_.sigma),
          ErrorCode::kConfig,
          "mechanism '" + name_ + "': sigma must be positive and finite");
  require(std::isfinite(params_.ea_ev) && std::isfinite(params_.gamma_v) &&
              std::isfinite(params_.activity_exp),
          ErrorCode::kConfig,
          "mechanism '" + name_ + "': acceleration parameters must be finite");
  require(tref_c_ > -kKelvinOffset, ErrorCode::kConfig,
          "mechanism '" + name_ + "': reference temperature below 0 K");
}

double LognormalMechanism::t50(const OperatingConditions& c) const {
  const double t_k = c.temp_c + kKelvinOffset;
  const double tref_k = tref_c_ + kKelvinOffset;
  double log_t50 = log_t50_ref_s_;
  // Arrhenius: positive Ea -> hotter is shorter-lived (1/T < 1/Tref).
  log_t50 += (params_.ea_ev / kBoltzmannEv) * (1.0 / t_k - 1.0 / tref_k);
  log_t50 -= params_.gamma_v * (c.vdd - vref_);
  // Activity power law referenced to activity = 1; idle blocks age slower.
  const double activity = std::clamp(c.activity, 1e-6, 10.0);
  log_t50 -= params_.activity_exp * std::log(activity);
  return std::exp(log_t50);
}

double LognormalMechanism::block_cdf(std::size_t /*j*/, double t,
                                     const OperatingConditions& c) const {
  if (!(t > 0.0)) return 0.0;
  const double z = (std::log(t) - std::log(t50(c))) / params_.sigma;
  return stats::normal_cdf(z);
}

double LognormalMechanism::block_time_at(std::size_t /*j*/, double f,
                                         const OperatingConditions& c) const {
  if (!(f > 0.0)) return 0.0;
  const double fc = std::min(f, 1.0 - 1e-16);
  return t50(c) * std::exp(params_.sigma * stats::normal_quantile(fc));
}

double LognormalMechanism::block_hazard(std::size_t /*j*/, double t,
                                        const OperatingConditions& c) const {
  if (!(t > 0.0)) return 0.0;
  const double sigma = params_.sigma;
  const double z = (std::log(t) - std::log(t50(c))) / sigma;
  const double density =
      std::exp(-0.5 * z * z) / (t * sigma * std::sqrt(2.0 * M_PI));
  const double survival = std::max(1e-300, 1.0 - stats::normal_cdf(z));
  return density / survival;
}

std::vector<std::unique_ptr<FailureMechanism>> make_aging_mechanisms(
    const MechanismSpec& spec) {
  std::vector<std::unique_ptr<FailureMechanism>> out;
  if (spec.nbti) {
    out.push_back(std::make_unique<LognormalMechanism>(
        "nbti", spec.nbti_params, spec.tref_c, spec.vref));
  }
  if (spec.em) {
    out.push_back(std::make_unique<LognormalMechanism>(
        "em", spec.em_params, spec.tref_c, spec.vref));
  }
  if (spec.hci) {
    out.push_back(std::make_unique<LognormalMechanism>(
        "hci", spec.hci_params, spec.tref_c, spec.vref));
  }
  return out;
}

}  // namespace obd::mech
