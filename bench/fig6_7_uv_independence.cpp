// Fig. 6 and Fig. 7 reproduction: the independence approximation between a
// block's BLOD sample mean u_j and sample variance v_j.
//
// Fig. 6: the joint PDF f(u, v) is visually indistinguishable from the
// product of the marginals; the mutual information is tiny (paper: 0.003).
// Fig. 7: the error between the joint PDF and the marginal product,
// normalized to the peak of the joint PDF, peaks around 7% in a small
// region and is negligible elsewhere.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "chip/design.hpp"
#include "core/blod.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace obd;

  // A representative multi-grid block of a C6-like setup.
  const var::VariationBudget budget;
  const var::GridModel grid(16.0, 16.0, 25);
  const var::CanonicalForm canonical =
      var::make_canonical_form(grid, budget, 0.5);

  // Block spanning a 5x5 patch of grid cells, 60K devices.
  std::vector<std::pair<std::size_t, double>> weights;
  for (std::size_t r = 10; r < 15; ++r)
    for (std::size_t c = 10; c < 15; ++c)
      weights.emplace_back(r * 25 + c, 1.0 / 25.0);
  const core::BlodMoments blod(canonical, weights, 60000);

  // Sample (u, v) across the chip ensemble.
  const std::size_t n = 200000;
  stats::Rng rng(67);
  std::vector<double> us;
  std::vector<double> vs;
  us.reserve(n);
  vs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const la::Vector z = canonical.sample_z(rng);
    us.push_back(blod.u_value(z));
    vs.push_back(blod.v_value(z));
  }
  const auto [ulo, uhi] = std::minmax_element(us.begin(), us.end());
  const auto [vlo, vhi] = std::minmax_element(vs.begin(), vs.end());

  const std::size_t bins = 24;
  stats::Histogram2D joint(*ulo, *uhi + 1e-12, bins, *vlo, *vhi + 1e-12,
                           bins);
  for (std::size_t i = 0; i < n; ++i) joint.add(us[i], vs[i]);

  // Fig. 6 headline number: mutual information.
  const double mi = stats::mutual_information(joint);
  std::printf("Fig. 6 reproduction: dependence between u_j and v_j\n\n");
  std::printf("  samples: %zu, histogram: %zux%zu\n", n, bins, bins);
  std::printf("  mutual information I(u; v) = %.4f nats\n", mi);
  std::printf("  (paper reference: ~0.003)\n\n");

  // Fig. 7: normalized error contour between joint and marginal product.
  double peak = 0.0;
  for (std::size_t i = 0; i < bins; ++i)
    for (std::size_t j = 0; j < bins; ++j)
      peak = std::max(peak, joint.probability(i, j));
  double max_err = 0.0;
  std::printf("Fig. 7 reproduction: |joint - marginal product| / peak\n");
  std::printf("(contour, row = v bins bottom-up; digits = error decile,\n"
              " '.' < 1%%)\n\n");
  for (std::size_t j = bins; j-- > 0;) {
    std::printf("  ");
    for (std::size_t i = 0; i < bins; ++i) {
      const double err = std::fabs(joint.probability(i, j) -
                                   joint.marginal_x(i) * joint.marginal_y(j)) /
                         peak;
      max_err = std::max(max_err, err);
      if (err < 0.01)
        std::printf(".");
      else
        std::printf("%d", std::min(9, static_cast<int>(err * 100.0)));
    }
    std::printf("\n");
  }
  std::printf("\n  max normalized error: %.1f%% (paper reference: ~7%%)\n",
              100.0 * max_err);
  std::printf(
      "  errors concentrate where the joint PDF itself is small, limiting\n"
      "  their propagation into the reliability integral (eq. 21).\n");
  return 0;
}
