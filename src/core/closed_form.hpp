// Closed-form kernels of the statistical OBD analysis (eq. 9-18).
#pragma once

#include <vector>

#include "core/problem.hpp"

namespace obd::core {

/// The Gaussian integral of eq. (17):
///   g(u, v) = exp(gamma b u + gamma^2 b^2 v / 2),  gamma = ln(t/alpha).
/// This is E[(t/alpha)^(b X)] for X ~ N(u, v) — the per-unit-area expected
/// Weibull exponent of a block whose BLOD has mean u and variance v.
double g_closed_form(double t, double alpha, double b, double u, double v);

/// Conditional reliability of one device (eq. 9):
/// R_i(t | x) = exp(-a (t/alpha)^(b x)).
double device_reliability(double t, double alpha, double b, double thickness,
                          double area = 1.0);

/// Conditional chip failure probability for known BLOD realizations
/// (u_j, v_j) of every block (complement of eq. 18). Evaluated in the exact
/// product form F = 1 - exp(-sum_j A_j g_j) — identical to the paper's
/// first-order expansion (eq. 16) at the ppm failure levels of interest,
/// but never negative for large t.
double conditional_chip_failure(const std::vector<BlockParams>& blocks,
                                double t, const std::vector<double>& u,
                                const std::vector<double>& v);

/// Single-block conditional failure: 1 - exp(-A g(u, v)).
double block_conditional_failure(const BlockParams& block, double t, double u,
                                 double v);

}  // namespace obd::core
