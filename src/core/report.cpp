#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/lifetime.hpp"

namespace obd::core {

SignOffReport make_signoff_report(const ReliabilityProblem& problem,
                                  const DeviceReliabilityModel& model,
                                  std::vector<double> targets) {
  if (targets.empty()) targets = {kOneFaultPerMillion, kTenFaultsPerMillion};
  for (double t : targets)
    require(t > 0.0 && t < 1.0, "make_signoff_report: target out of (0, 1)");

  SignOffReport report;
  report.design_name = problem.design().name;
  report.devices = problem.design().total_devices();
  report.blocks = problem.blocks().size();
  report.vdd = problem.vdd();
  report.temp_min_c = problem.blocks().front().temp_c;
  report.temp_max_c = report.temp_min_c;
  for (const auto& b : problem.blocks()) {
    report.temp_min_c = std::min(report.temp_min_c, b.temp_c);
    report.temp_max_c = std::max(report.temp_max_c, b.temp_c);
  }
  {
    const mech::MechanismSpec& spec = problem.mechanisms().spec();
    std::string names = "oxide";
    if (spec.nbti) names += ",nbti";
    if (spec.em) names += ",em";
    if (spec.hci) names += ",hci";
    report.mechanisms = names;
    report.redundancy_groups = spec.redundancy.size();
  }

  const AnalyticAnalyzer fast(problem);
  const GuardBandAnalyzer guard(problem);
  for (double target : targets)
    report.lifetimes.push_back(
        {target, fast.lifetime_at(target), guard.lifetime_at(target)});

  report.ranking = temperature_sensitivity(problem, model, targets.front());
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const BlockSensitivity& a, const BlockSensitivity& b) {
              return a.failure_share > b.failure_share;
            });
  report.vdd_elasticity = vdd_sensitivity(problem, model, targets.front());

  const LeakageAnalyzer leakage(problem);
  report.leakage_mean_a = leakage.mean();
  report.leakage_nominal_a = leakage.nominal_chip();
  return report;
}

std::string SignOffReport::render() const {
  constexpr double kYear = 365.25 * 24.0 * 3600.0;
  std::ostringstream os;
  os << "== OBD reliability sign-off: " << design_name << " ==\n";
  os << devices << " devices, " << blocks << " blocks, Vdd " << fmt(vdd, 2)
     << " V, T " << fmt(temp_min_c, 1) << ".." << fmt(temp_max_c, 1)
     << " C\n";
  if (mechanisms != "oxide" || redundancy_groups > 0) {
    os << "Mechanisms: " << mechanisms;
    if (redundancy_groups > 0)
      os << " (" << redundancy_groups << " spare group"
         << (redundancy_groups == 1 ? "" : "s") << ")";
    os << "\n";
  }
  os << "\n";

  TextTable lt({"target", "statistical [y]", "guard-band [y]",
                "guard pessimism"});
  for (const auto& row : lifetimes) {
    std::ostringstream target;
    target << row.target;
    lt.add_row({target.str(), fmt(row.statistical_s / kYear, 2),
                fmt(row.guard_s / kYear, 2),
                fmt(100.0 * (1.0 - row.guard_s / row.statistical_s), 0) +
                    "%"});
  }
  lt.print(os);

  os << "\nBlock ranking (at the first target):\n";
  TextTable bt({"block", "T [C]", "failure share", "dln(t)/dT per C"});
  for (const auto& s : ranking)
    bt.add_row({s.name, fmt(s.temp_c, 1),
                fmt(100.0 * s.failure_share, 1) + "%",
                fmt(100.0 * s.lifetime_per_degree, 2) + "%"});
  bt.print(os);

  os << "\nSupply elasticity: " << fmt(100.0 * vdd_elasticity, 1)
     << "% lifetime per +10 mV\n";
  os << "Gate leakage: mean " << fmt(1e3 * leakage_mean_a, 3)
     << " mA (nominal die " << fmt(1e3 * leakage_nominal_a, 3) << " mA)\n";
  return os.str();
}

}  // namespace obd::core
