#include "core/device_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/diagnostics.hpp"
#include "common/error.hpp"

namespace obd::core {
namespace {

constexpr double kKelvinOffset = 273.15;

}  // namespace

AnalyticReliabilityModel::AnalyticReliabilityModel(
    const AnalyticModelParams& params)
    : params_(params) {
  require(params.alpha_ref > 0.0, "AnalyticReliabilityModel: alpha_ref > 0");
  require(params.b_ref > 0.0, "AnalyticReliabilityModel: b_ref > 0");
  require(params.b_floor > 0.0, "AnalyticReliabilityModel: b_floor > 0");
}

double AnalyticReliabilityModel::alpha(double temp_c, double vdd) const {
  require(temp_c > -kKelvinOffset,
          "AnalyticReliabilityModel::alpha: temperature below absolute zero");
  const double t = temp_c + kKelvinOffset;
  const double tref = params_.temp_ref_c + kKelvinOffset;
  const double inv_diff = 1.0 / t - 1.0 / tref;
  const double inv2_diff = 1.0 / (t * t) - 1.0 / (tref * tref);
  const double log_alpha = std::log(params_.alpha_ref) +
                           params_.c1 * inv_diff + params_.c2 * inv2_diff -
                           params_.gamma_v * (vdd - params_.vdd_ref);
  return std::exp(log_alpha);
}

double AnalyticReliabilityModel::b(double temp_c, double /*vdd*/) const {
  const double raw =
      params_.b_ref - params_.b_temp_slope * (temp_c - params_.temp_ref_c);
  return std::max(params_.b_floor, raw);
}

TabulatedReliabilityModel::TabulatedReliabilityModel(
    std::vector<ReliabilityTableRow> rows, double vdd_ref, double gamma_v)
    : rows_(std::move(rows)), vdd_ref_(vdd_ref), gamma_v_(gamma_v) {
  require(rows_.size() >= 2,
          "TabulatedReliabilityModel: need at least two rows");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    require(rows_[i].alpha > 0.0 && rows_[i].b > 0.0,
            "TabulatedReliabilityModel: alpha and b must be positive");
    if (i > 0)
      require(rows_[i].temp_c > rows_[i - 1].temp_c,
              "TabulatedReliabilityModel: rows must increase in temperature");
  }
}

TabulatedReliabilityModel TabulatedReliabilityModel::from_model(
    const DeviceReliabilityModel& model, const std::vector<double>& temps_c,
    double vdd_ref, double gamma_v) {
  std::vector<ReliabilityTableRow> rows;
  rows.reserve(temps_c.size());
  for (double t : temps_c)
    rows.push_back({t, model.alpha(t, vdd_ref), model.b(t, vdd_ref)});
  return TabulatedReliabilityModel(std::move(rows), vdd_ref, gamma_v);
}

void TabulatedReliabilityModel::note_extrapolation(double temp_c) const {
  if (temp_c >= rows_.front().temp_c && temp_c <= rows_.back().temp_c) return;
  // One-shot per table (like mc.binning): only the first out-of-range
  // query reports, so a temperature sweep past the table edge does not
  // flood the collector.
  if (extrapolation_warned_->exchange(true)) return;
  std::ostringstream msg;
  msg << "temperature " << temp_c << " C outside tabulated range ["
      << rows_.front().temp_c << ", " << rows_.back().temp_c
      << "] C; clamping to the nearest row (add table rows to cover the "
         "operating range)";
  diagnostics().warn("device.table_extrapolate", msg.str());
}

double TabulatedReliabilityModel::alpha(double temp_c, double vdd) const {
  note_extrapolation(temp_c);
  // Locate the bracketing rows (clamped extrapolation at the edges).
  std::size_t hi = 1;
  while (hi + 1 < rows_.size() && rows_[hi].temp_c < temp_c) ++hi;
  const auto& r0 = rows_[hi - 1];
  const auto& r1 = rows_[hi];
  const double f =
      std::clamp((temp_c - r0.temp_c) / (r1.temp_c - r0.temp_c), 0.0, 1.0);
  const double log_alpha =
      std::log(r0.alpha) + f * (std::log(r1.alpha) - std::log(r0.alpha));
  return std::exp(log_alpha - gamma_v_ * (vdd - vdd_ref_));
}

double TabulatedReliabilityModel::b(double temp_c, double /*vdd*/) const {
  note_extrapolation(temp_c);
  std::size_t hi = 1;
  while (hi + 1 < rows_.size() && rows_[hi].temp_c < temp_c) ++hi;
  const auto& r0 = rows_[hi - 1];
  const auto& r1 = rows_[hi];
  const double f =
      std::clamp((temp_c - r0.temp_c) / (r1.temp_c - r0.temp_c), 0.0, 1.0);
  return r0.b + f * (r1.b - r0.b);
}

}  // namespace obd::core
