#include "thermal/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace obd::thermal {
namespace {

// Normalized field position [0, 1] of a pixel's cell value.
double normalized(const ThermalProfile& p, std::size_t row, std::size_t col,
                  double lo, double hi) {
  const double t = p.cell_temps_c[row * p.resolution + col];
  return (hi > lo) ? std::clamp((t - lo) / (hi - lo), 0.0, 1.0) : 0.0;
}

// Blue -> cyan -> yellow -> red ramp.
void ramp(double x, unsigned char rgb[3]) {
  const double r = std::clamp(2.0 * x - 0.8, 0.0, 1.0);
  const double g = std::clamp(1.6 - std::fabs(2.4 * x - 1.2), 0.0, 1.0);
  const double b = std::clamp(1.2 - 2.0 * x, 0.0, 1.0);
  rgb[0] = static_cast<unsigned char>(255.0 * r);
  rgb[1] = static_cast<unsigned char>(255.0 * g);
  rgb[2] = static_cast<unsigned char>(255.0 * b);
}

void check(const ThermalProfile& profile, std::size_t upscale) {
  require(profile.resolution >= 1 && !profile.cell_temps_c.empty(),
          "thermal image: empty profile");
  require(upscale >= 1, "thermal image: upscale must be >= 1");
}

}  // namespace

void write_pgm(std::ostream& out, const ThermalProfile& profile,
               std::size_t upscale) {
  check(profile, upscale);
  const std::size_t n = profile.resolution * upscale;
  out << "P5\n" << n << ' ' << n << "\n255\n";
  const double lo = profile.min_c();
  const double hi = profile.max_c();
  // Image rows run top-down; die rows run bottom-up.
  for (std::size_t py = n; py-- > 0;) {
    const std::size_t row = py / upscale;
    for (std::size_t px = 0; px < n; ++px) {
      const std::size_t col = px / upscale;
      const auto v = static_cast<unsigned char>(
          255.0 * normalized(profile, row, col, lo, hi));
      out.put(static_cast<char>(v));
    }
  }
  require(out.good(), "write_pgm: write failed");
}

void write_ppm(std::ostream& out, const ThermalProfile& profile,
               std::size_t upscale) {
  check(profile, upscale);
  const std::size_t n = profile.resolution * upscale;
  out << "P6\n" << n << ' ' << n << "\n255\n";
  const double lo = profile.min_c();
  const double hi = profile.max_c();
  unsigned char rgb[3];
  for (std::size_t py = n; py-- > 0;) {
    const std::size_t row = py / upscale;
    for (std::size_t px = 0; px < n; ++px) {
      const std::size_t col = px / upscale;
      ramp(normalized(profile, row, col, lo, hi), rgb);
      out.write(reinterpret_cast<const char*>(rgb), 3);
    }
  }
  require(out.good(), "write_ppm: write failed");
}

void write_pgm_file(const std::string& path, const ThermalProfile& profile,
                    std::size_t upscale) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "write_pgm_file: cannot open '" + path + "'");
  write_pgm(out, profile, upscale);
}

void write_ppm_file(const std::string& path, const ThermalProfile& profile,
                    std::size_t upscale) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "write_ppm_file: cannot open '" + path + "'");
  write_ppm(out, profile, upscale);
}

}  // namespace obd::thermal
