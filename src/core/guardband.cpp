#include "core/guardband.hpp"

#include <cmath>

#include "common/error.hpp"

namespace obd::core {
namespace {

// Worst corner of the per-block parameters: the hottest block's alpha/b.
const BlockParams& hottest_block(const ReliabilityProblem& problem) {
  const auto& blocks = problem.blocks();
  std::size_t worst = 0;
  for (std::size_t j = 1; j < blocks.size(); ++j)
    if (blocks[j].temp_c > blocks[worst].temp_c) worst = j;
  return blocks[worst];
}

}  // namespace

GuardBandAnalyzer::GuardBandAnalyzer(const ReliabilityProblem& problem)
    : GuardBandAnalyzer(problem.design().total_obd_area(),
                        hottest_block(problem).alpha,
                        hottest_block(problem).b, problem.min_thickness()) {}

GuardBandAnalyzer::GuardBandAnalyzer(double total_area, double alpha_worst,
                                     double b_worst, double min_thickness)
    : area_(total_area),
      alpha_(alpha_worst),
      b_(b_worst),
      x_min_(min_thickness) {
  require(area_ > 0.0, "GuardBandAnalyzer: area must be positive");
  require(alpha_ > 0.0, "GuardBandAnalyzer: alpha must be positive");
  require(b_ > 0.0, "GuardBandAnalyzer: b must be positive");
  require(x_min_ > 0.0, "GuardBandAnalyzer: thickness must be positive");
}

double GuardBandAnalyzer::failure_probability(double t) const {
  require(t >= 0.0, "GuardBandAnalyzer: t must be non-negative");
  if (t == 0.0) return 0.0;
  return -std::expm1(-area_ * std::pow(t / alpha_, b_ * x_min_));
}

double GuardBandAnalyzer::reliability(double t) const {
  return 1.0 - failure_probability(t);
}

double GuardBandAnalyzer::lifetime_at(double target_failure) const {
  require(target_failure > 0.0 && target_failure < 1.0,
          "GuardBandAnalyzer: target must be in (0, 1)");
  const double r_req = 1.0 - target_failure;
  return alpha_ * std::pow(-std::log(r_req) / area_, 1.0 / (b_ * x_min_));
}

}  // namespace obd::core
