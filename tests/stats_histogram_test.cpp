#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stats/fit.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace obd::stats {
namespace {

TEST(Histogram1D, BinningAndTotals) {
  Histogram1D h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.probability(1), 0.5);
  EXPECT_DOUBLE_EQ(h.density(1), 0.5);  // probability 0.5 / bin width 1.0
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram1D, OutOfRangeClampsToEdges) {
  Histogram1D h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram1D, WeightedAdds) {
  Histogram1D h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.probability(0), 0.75);
}

TEST(Histogram1D, RejectsBadConstruction) {
  EXPECT_THROW(Histogram1D(1.0, 0.0, 4), obd::Error);
  EXPECT_THROW(Histogram1D(0.0, 1.0, 0), obd::Error);
}

TEST(Histogram2D, JointAndMarginals) {
  Histogram2D h(0.0, 2.0, 2, 0.0, 2.0, 2);
  h.add(0.5, 0.5);
  h.add(0.5, 1.5);
  h.add(1.5, 1.5);
  h.add(1.5, 1.5);
  EXPECT_DOUBLE_EQ(h.probability(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(h.probability(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(h.marginal_x(0), 0.5);
  EXPECT_DOUBLE_EQ(h.marginal_y(1), 0.75);
  double mass = 0.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) mass += h.probability(i, j);
  EXPECT_DOUBLE_EQ(mass, 1.0);
}

TEST(MutualInformation, ZeroForIndependent) {
  Rng rng(10);
  Histogram2D h(0.0, 1.0, 16, 0.0, 1.0, 16);
  for (int i = 0; i < 200000; ++i) h.add(rng.uniform(), rng.uniform());
  // Plug-in MI has a positive O(bins^2 / n) bias; with 256 cells and 2e5
  // samples the bias is ~6e-4 nats.
  EXPECT_LT(mutual_information(h), 0.01);
}

TEST(MutualInformation, LargeForDependent) {
  Rng rng(11);
  Histogram2D h(0.0, 1.0, 16, 0.0, 1.0, 16);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform();
    h.add(x, x);  // perfectly dependent
  }
  // I(X;X) for 16 uniform bins = log(16) = 2.77 nats.
  EXPECT_NEAR(mutual_information(h), std::log(16.0), 0.05);
}

TEST(FitGaussian, RecoversParametersWithHighRSquare) {
  Rng rng(12);
  Histogram1D h(2.0, 2.4, 60);
  for (int i = 0; i < 100000; ++i) h.add(rng.normal(2.2, 0.03));
  const GaussianFit fit = fit_gaussian(h);
  EXPECT_NEAR(fit.mean, 2.2, 0.002);
  EXPECT_NEAR(fit.stddev, 0.03, 0.002);
  EXPECT_GT(fit.r_square, 0.99);  // the paper's Fig. 4 reports ~99.5-99.8%
}

TEST(FitGaussian, LowRSquareForNonGaussian) {
  Rng rng(13);
  Histogram1D h(0.0, 1.0, 40);
  // Strongly bimodal data.
  for (int i = 0; i < 50000; ++i)
    h.add((i % 2 == 0) ? rng.normal(0.2, 0.03) : rng.normal(0.8, 0.03));
  const GaussianFit fit = fit_gaussian(h);
  EXPECT_LT(fit.r_square, 0.6);
}

TEST(FitGaussian, RejectsEmptyHistogram) {
  Histogram1D h(0.0, 1.0, 4);
  EXPECT_THROW(fit_gaussian(h), obd::Error);
}

}  // namespace
}  // namespace obd::stats
