#include "power/power.hpp"

#include <cmath>

#include "common/error.hpp"

namespace obd::power {

double capacitance_density(chip::UnitKind kind) {
  using chip::UnitKind;
  switch (kind) {
    case UnitKind::kLogic:         return 0.70e-9;
    case UnitKind::kRegisterFile:  return 0.60e-9;
    case UnitKind::kFloatingPoint: return 0.60e-9;
    case UnitKind::kQueue:         return 0.50e-9;
    case UnitKind::kCore:          return 0.50e-9;
    case UnitKind::kPredictor:     return 0.45e-9;
    case UnitKind::kTlb:           return 0.45e-9;
    case UnitKind::kInterconnect:  return 0.30e-9;
    case UnitKind::kCache:         return 0.25e-9;
  }
  throw Error("capacitance_density: unknown unit kind");
}

double PowerMap::total() const {
  double t = 0.0;
  for (double w : block_watts) t += w;
  return t;
}

PowerMap estimate_power(const chip::Design& design, const PowerParams& params,
                        const std::vector<double>& block_temps_c) {
  design.validate();
  require(params.vdd > 0.0, "estimate_power: vdd must be positive");
  require(params.frequency > 0.0,
          "estimate_power: frequency must be positive");
  require(block_temps_c.empty() ||
              block_temps_c.size() == design.blocks.size(),
          "estimate_power: temperature vector size mismatch");

  PowerMap map;
  map.block_watts.reserve(design.blocks.size());
  for (std::size_t i = 0; i < design.blocks.size(); ++i) {
    const auto& b = design.blocks[i];
    const double area = b.rect.area();
    const double dynamic = b.activity * capacitance_density(b.kind) * area *
                           params.vdd * params.vdd * params.frequency;
    const double temp = block_temps_c.empty() ? 25.0 : block_temps_c[i];
    const double leakage = params.leakage_density_25c * area *
                           std::exp(params.leakage_temp_coeff * (temp - 25.0));
    map.block_watts.push_back(dynamic + leakage);
  }
  return map;
}

}  // namespace obd::power
