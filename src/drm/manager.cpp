#include "drm/manager.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/arena.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/stopwatch.hpp"
#include "numeric/roots.hpp"
#include "power/power.hpp"
#include "thermal/block_model.hpp"

namespace obd::drm {
namespace {

/// Memo entries per rung. Real traces quantize activity into a handful of
/// plateaus; anything past the cap recomputes instead of growing the map.
constexpr std::size_t kConditionsMemoCap = 64;

}  // namespace

ReliabilityManager::ReliabilityManager(
    const core::ReliabilityProblem& problem,
    const core::DeviceReliabilityModel& model,
    std::vector<OperatingPoint> ladder, const DrmOptions& options)
    : problem_(&problem),
      model_(&model),
      ladder_(std::move(ladder)),
      options_(options),
      lut_(problem),
      block_damage_(problem.blocks().size(), 0.0),
      extra_damage_(
          problem.mechanisms().extra_count() * problem.blocks().size(),
          0.0),
      state_(problem),
      conditions_memo_(ladder_.size()) {
  // The construction snapshot is not a committed step; the first commit
  // reports its true delta against the problem's own parameters.
  state_.clear_dirty();
  require(!ladder_.empty(), "ReliabilityManager: empty DVFS ladder");
  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    require(ladder_[i].vdd > 0.0 && ladder_[i].frequency > 0.0,
            "ReliabilityManager: invalid operating point");
    if (i > 0)
      require(ladder_[i].frequency >= ladder_[i - 1].frequency,
              "ReliabilityManager: ladder must be sorted slow -> fast");
  }
  require(options_.lifetime_target_s > 0.0 &&
              options_.failure_budget > 0.0 &&
              options_.control_interval_s > 0.0,
          "ReliabilityManager: invalid options");
}

double ReliabilityManager::budget_line(double t) const {
  return options_.failure_budget *
         std::min(1.0, t / options_.lifetime_target_s);
}

double ReliabilityManager::damage() const {
  double total = 0.0;
  for (double d : block_damage_) total += d;
  for (double d : extra_damage_) total += d;
  return total;
}

std::vector<double> ReliabilityManager::damage_state() const {
  std::vector<double> state = block_damage_;
  state.insert(state.end(), extra_damage_.begin(), extra_damage_.end());
  return state;
}

void ReliabilityManager::restore_state(
    const std::vector<double>& damage_state, double elapsed_s,
    std::size_t last_op_index) {
  require(damage_state.size() == state_size(),
          "ReliabilityManager: restored damage vector has " +
              std::to_string(damage_state.size()) + " entries, expected " +
              std::to_string(state_size()));
  for (double d : damage_state)
    require(std::isfinite(d) && d >= 0.0 && d <= 1.0,
            "ReliabilityManager: restored block damage out of [0, 1]");
  require(std::isfinite(elapsed_s) && elapsed_s >= 0.0,
          "ReliabilityManager: restored elapsed time is invalid");
  require(last_op_index < ladder_.size(),
          "ReliabilityManager: restored rung out of range");
  std::copy(damage_state.begin(),
            damage_state.begin() + static_cast<long>(block_damage_.size()),
            block_damage_.begin());
  std::copy(damage_state.begin() + static_cast<long>(block_damage_.size()),
            damage_state.end(), extra_damage_.begin());
  elapsed_s_ = elapsed_s;
  last_op_index_ = last_op_index;
}

ReliabilityManager::Conditions ReliabilityManager::conditions_for(
    const OperatingPoint& op, double workload_activity) const {
  require(workload_activity >= 0.0,
          "ReliabilityManager: negative workload activity");
  chip::Design scaled = problem_->design();
  for (auto& b : scaled.blocks)
    b.activity = std::min(1.0, b.activity * workload_activity);

  power::PowerParams pp;
  pp.vdd = op.vdd;
  pp.frequency = op.frequency;
  // One leakage-feedback pass at block granularity (fast and sufficient —
  // the block model is already approximate).
  power::PowerMap map = power::estimate_power(scaled, pp);
  auto profile = thermal::solve_thermal_blocks(scaled, map, options_.thermal);
  map = power::estimate_power(scaled, pp, profile.block_temps_c);
  profile = thermal::solve_thermal_blocks(scaled, map, options_.thermal);

  Conditions c;
  c.max_temp_c = *std::max_element(profile.block_temps_c.begin(),
                                   profile.block_temps_c.end());
  require(std::isfinite(c.max_temp_c), ErrorCode::kNonconvergence,
          "ReliabilityManager: thermal solve produced non-finite "
          "temperatures");
  c.vdd = op.vdd;
  c.temps_c = profile.block_temps_c;
  c.activities.reserve(scaled.blocks.size());
  for (const auto& b : scaled.blocks) c.activities.push_back(b.activity);
  c.alphas.reserve(profile.block_temps_c.size());
  c.bs.reserve(profile.block_temps_c.size());
  for (double t : profile.block_temps_c) {
    c.alphas.push_back(model_->alpha(t, op.vdd));
    c.bs.push_back(model_->b(t, op.vdd));
  }
  return c;
}

ReliabilityManager::Conditions ReliabilityManager::cached_conditions_for(
    std::size_t rung, double workload_activity) {
  // The injected-fault check runs before the memo is consulted: a forced
  // thermal failure must fire even when the answer is cached (the fault
  // models the solver path being down, not a cache miss).
  if (fault::should_fire(fault::site::kDrmThermal))
    throw Error("ReliabilityManager: injected thermal-solve fault",
                ErrorCode::kNonconvergence);
  // Conditions are a pure function of (rung, activity bits): the design,
  // power model, and thermal options are fixed for the manager's life.
  const std::uint64_t key = std::bit_cast<std::uint64_t>(workload_activity);
  auto& memo = conditions_memo_[rung];
  if (const auto it = memo.find(key); it != memo.end()) {
    ++conditions_hits_;
    return it->second;
  }
  Conditions c = conditions_for(ladder_[rung], workload_activity);
  ++conditions_misses_;
  if (memo.size() < kConditionsMemoCap) memo.emplace(key, c);
  return c;
}

std::size_t ReliabilityManager::commit_state(const Conditions& c) {
  state_.set_vdd(c.vdd);
  for (std::size_t j = 0; j < block_damage_.size(); ++j) {
    state_.set_alpha_b(j, c.alphas[j], c.bs[j]);
    state_.set_temp_c(j, c.temps_c[j]);
    state_.set_activity(j, c.activities[j]);
  }
  const std::size_t dirty = state_.dirty_count();
  dirty_blocks_total_ += dirty;
  state_.clear_dirty();
  return dirty;
}

double ReliabilityManager::sanitize_activity(double workload_activity,
                                             bool* degraded) const {
  if (std::isnan(workload_activity)) {
    diagnostics().warn("drm.step",
                       "workload activity is NaN; assuming full activity "
                       "(guard-band-safe)");
    *degraded = true;
    return 1.0;
  }
  if (workload_activity < 0.0) {
    std::ostringstream msg;
    msg << "negative workload activity " << workload_activity
        << "; clamped to 0";
    diagnostics().warn("drm.step", msg.str());
    *degraded = true;
    return 0.0;
  }
  if (workload_activity > options_.max_activity) {
    std::ostringstream msg;
    msg << "workload activity " << workload_activity
        << " exceeds the plausible maximum " << options_.max_activity
        << "; clamped";
    diagnostics().warn("drm.step", msg.str());
    *degraded = true;
    return options_.max_activity;
  }
  return workload_activity;
}

ReliabilityManager::Conditions ReliabilityManager::guardband_conditions(
    const OperatingPoint& op) const {
  const double t_hot =
      std::max(options_.fallback_temp_c, problem_->worst_temp_c());
  Conditions c;
  c.max_temp_c = t_hot;
  c.vdd = op.vdd;
  const std::size_t n = problem_->blocks().size();
  c.alphas.reserve(n);
  c.bs.reserve(n);
  // Guard-band: hot corner, full activity — the pessimistic reading for
  // every mechanism.
  c.temps_c.assign(n, t_hot);
  c.activities.assign(n, 1.0);
  for (std::size_t j = 0; j < n; ++j) {
    c.alphas.push_back(model_->alpha(t_hot, op.vdd));
    c.bs.push_back(model_->b(t_hot, op.vdd));
  }
  return c;
}

double ReliabilityManager::advanced_damage(std::size_t j, double d_j,
                                           double alpha, double b,
                                           double dt) const {
  const auto& opt = lut_.options();
  const double b_clamped = std::clamp(b, opt.b_lo, opt.b_hi);

  // Effective age under the *new* conditions: the gamma at which the block
  // would have accumulated its current damage.
  double tau0 = 0.0;
  if (d_j > 0.0) {
    const double d_lo = lut_.block_failure(j, opt.gamma_lo, b_clamped);
    const double d_hi = lut_.block_failure(j, opt.gamma_hi, b_clamped);
    if (d_j <= d_lo) {
      tau0 = 0.0;
    } else if (d_j >= d_hi) {
      tau0 = alpha * std::exp(opt.gamma_hi);
    } else {
      const double gamma0 = num::brent(
          [&](double g) {
            return lut_.block_failure(j, g, b_clamped) - d_j;
          },
          opt.gamma_lo, opt.gamma_hi, 1e-12);
      tau0 = alpha * std::exp(gamma0);
    }
  }
  const double gamma1 =
      std::min(opt.gamma_hi, std::log((tau0 + dt) / alpha));
  // Damage never decreases (the lookup is monotone in gamma; the max
  // guards roundoff at the recursion boundaries).
  return std::max(d_j, lut_.block_failure(j, gamma1, b_clamped));
}

double ReliabilityManager::advanced_extra_damage(
    const mech::FailureMechanism& mechanism, std::size_t j, double d,
    const mech::OperatingConditions& c, double dt) const {
  // Effective age under the new conditions: the time at which the
  // mechanism would have accumulated the consumed damage, then advance.
  const double t0 = (d > 0.0) ? mechanism.block_time_at(j, d, c) : 0.0;
  const double f = mechanism.block_cdf(j, t0 + dt, c);
  return std::clamp(std::max(d, f), 0.0, 1.0);
}

double ReliabilityManager::project_extras(const Conditions& c, double dt,
                                          std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  if (extra_damage_.empty()) return 0.0;
  require(out.size() == extra_damage_.size(),
          "ReliabilityManager: projection span size mismatch");
  const auto& extras = problem_->mechanisms().extras();
  const std::size_t n = block_damage_.size();
  double total = 0.0;
  for (std::size_t m = 0; m < extras.size(); ++m) {
    for (std::size_t j = 0; j < n; ++j) {
      const mech::OperatingConditions oc{c.temps_c[j], c.vdd,
                                         c.activities[j]};
      const double d = advanced_extra_damage(*extras[m], j,
                                             extra_damage_[m * n + j], oc,
                                             dt);
      out[m * n + j] = d;
      total += d;
    }
  }
  return total;
}

DrmStep ReliabilityManager::step_fixed(std::size_t op_index,
                                       double workload_activity) {
  require(op_index < ladder_.size(), "ReliabilityManager: rung out of range");
  DrmStep out;
  const double activity = sanitize_activity(workload_activity, &out.degraded);

  Conditions c;
  try {
    c = cached_conditions_for(op_index, activity);
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kDegraded) throw;
    out.degraded = true;
    diagnostics().warn(
        "drm.step", std::string("thermal evaluation of fixed rung '") +
                        ladder_[op_index].name + "' failed (" + e.what() +
                        "); accruing damage at guard-band conditions");
    c = guardband_conditions(ladder_[op_index]);
  }

  const double dt = options_.control_interval_s;
  for (std::size_t j = 0; j < block_damage_.size(); ++j)
    block_damage_[j] = advanced_damage(j, block_damage_[j], c.alphas[j],
                                       c.bs[j], dt);
  if (!extra_damage_.empty()) {
    ArenaFrame frame;
    const std::span<double> advanced =
        frame.arena().make_span<double>(extra_damage_.size());
    project_extras(c, dt, advanced);
    std::copy(advanced.begin(), advanced.end(), extra_damage_.begin());
  }
  elapsed_s_ += dt;

  out.dirty_blocks = commit_state(c);
  out.op_index = op_index;
  out.performance = ladder_[op_index].frequency * std::min(1.0, activity);
  out.damage = damage();
  out.budget_line = budget_line(elapsed_s_);
  out.max_temp_c = c.max_temp_c;
  last_op_index_ = op_index;
  return out;
}

DrmStep ReliabilityManager::step(double workload_activity) {
  DrmStep out;
  const Stopwatch watchdog;
  const double activity = sanitize_activity(workload_activity, &out.degraded);
  const double dt = options_.control_interval_s;
  const double allowance = budget_line(elapsed_s_ + dt);

  // Try rungs fastest-first; commit the first one whose projected total
  // damage stays on the trajectory. A rung whose thermal evaluation fails
  // is skipped (slower rungs are cooler, hence more likely to evaluate);
  // if even the slowest rung cannot be evaluated, damage accrues at
  // guard-band hot-corner conditions — pessimistic, but the control loop
  // keeps running.
  std::size_t chosen = 0;  // fallback: slowest rung
  // All per-step scratch (the committed vectors and one projection pair
  // per evaluated rung) lives in this frame of the thread's bump arena;
  // the frame destructor releases it all at once when the step returns.
  ArenaFrame frame;
  std::span<double> committed =
      frame.arena().make_span<double>(block_damage_.size());
  std::span<double> committed_extra =
      frame.arena().make_span<double>(extra_damage_.size());
  Conditions conditions;
  bool have_conditions = false;
  bool deadline_hit = false;
  for (std::size_t r = ladder_.size(); r-- > 0;) {
    // Watchdog: a rung evaluation is a thermal solve and can be slow. When
    // the search has already overrun its deadline, stop evaluating and fall
    // back to the cached previous decision at guard-band conditions (no
    // further solves) — the control loop must never stall past its
    // interval. The `drm.deadline` fault site forces this path.
    if ((options_.step_deadline_ms > 0.0 &&
         watchdog.milliseconds() > options_.step_deadline_ms) ||
        fault::should_fire(fault::site::kDrmDeadline)) {
      deadline_hit = true;
      out.degraded = true;
      std::ostringstream msg;
      msg << "step overran its " << options_.step_deadline_ms
          << " ms deadline with " << (r + 1)
          << " rung(s) unevaluated; committing previous rung '"
          << ladder_[last_op_index_].name << "' at guard-band conditions";
      diagnostics().warn("drm.deadline", msg.str());
      break;
    }
    Conditions c;
    try {
      c = cached_conditions_for(r, activity);
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kDegraded) throw;
      out.degraded = true;
      diagnostics().warn("drm.step",
                         std::string("rung '") + ladder_[r].name +
                             "' evaluation failed (" + e.what() +
                             "); skipping");
      continue;
    }
    const std::span<double> projected =
        frame.arena().make_span<double>(block_damage_.size());
    double total = 0.0;
    for (std::size_t j = 0; j < block_damage_.size(); ++j) {
      projected[j] = advanced_damage(j, block_damage_[j], c.alphas[j],
                                     c.bs[j], dt);
      total += projected[j];
    }
    const std::span<double> projected_extra =
        frame.arena().make_span<double>(extra_damage_.size());
    if (!extra_damage_.empty())
      total += project_extras(c, dt, projected_extra);
    if (total <= allowance || r == 0) {
      chosen = r;
      committed = projected;  // spans rebind; the frame owns the storage
      committed_extra = projected_extra;
      conditions = std::move(c);
      have_conditions = true;
      break;
    }
  }

  if (!have_conditions) {
    // Deadline overrun: commit the cached previous decision. Otherwise
    // every evaluable rung was over budget or failed; commit the slowest
    // rung. Either way damage accrues at guard-band conditions (the
    // guard-band-safe choice).
    chosen = deadline_hit ? last_op_index_ : 0;
    conditions = guardband_conditions(ladder_[chosen]);
    if (!deadline_hit)
      diagnostics().warn("drm.step",
                         "no rung could be evaluated; falling back to the "
                         "slowest rung at guard-band conditions");
    for (std::size_t j = 0; j < block_damage_.size(); ++j)
      committed[j] = advanced_damage(j, block_damage_[j],
                                     conditions.alphas[j],
                                     conditions.bs[j], dt);
    if (!extra_damage_.empty())
      project_extras(conditions, dt, committed_extra);
  }

  std::copy(committed.begin(), committed.end(), block_damage_.begin());
  if (!extra_damage_.empty())
    std::copy(committed_extra.begin(), committed_extra.end(),
              extra_damage_.begin());
  elapsed_s_ += dt;

  out.dirty_blocks = commit_state(conditions);
  out.op_index = chosen;
  out.performance = ladder_[chosen].frequency * std::min(1.0, activity);
  out.damage = damage();
  out.budget_line = budget_line(elapsed_s_);
  out.max_temp_c = conditions.max_temp_c;
  last_op_index_ = chosen;
  return out;
}

}  // namespace obd::drm
