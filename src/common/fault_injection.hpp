// Deterministic fault-injection registry.
//
// Every critical seam of the pipeline (parsers, factorizations, iterative
// solvers, the DRM thermal solve) hosts a named injection site. When a site
// is armed, the seam simulates its natural failure mode — a parse error, a
// non-positive-definite pivot, a NaN temperature — so the recovery paths
// can be exercised deterministically, without crafting pathological inputs.
//
// Arming:
//   - programmatically:  fault::arm("thermal.sor,linalg.eigen:2");
//   - from the environment (done by the CLI): OBDREL_FAULTS="drm.thermal:3"
//
// Spec grammar: comma-separated `site`, `site:N` (fire N times, then go
// quiet) or `site:*` (fire on every hit). A bare `site` fires once.
//
// Cost discipline: should_fire() is a single relaxed atomic load of a
// process-global flag when nothing is armed — safe to leave in hot paths
// (bench/micro_kernels tracks the disarmed overhead).
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

namespace obd::fault {

/// Catalogue of registered injection-site names. Keep docs/ROBUSTNESS.md in
/// sync when adding a site.
namespace site {
inline constexpr const char* kConfigParse = "config.parse";
inline constexpr const char* kFloorplanParse = "floorplan.parse";
inline constexpr const char* kPtraceParse = "ptrace.parse";
inline constexpr const char* kLutLoad = "lut.load";
inline constexpr const char* kCholesky = "linalg.cholesky";
inline constexpr const char* kEigen = "linalg.eigen";
inline constexpr const char* kThermalSor = "thermal.sor";
inline constexpr const char* kThermalFixedPoint = "thermal.fixed_point";
inline constexpr const char* kQuadrature = "numeric.quadrature";
inline constexpr const char* kDrmThermal = "drm.thermal";
inline constexpr const char* kCheckpointWrite = "checkpoint.write";
inline constexpr const char* kCheckpointCrc = "checkpoint.crc";
inline constexpr const char* kJournalAppend = "journal.append";
inline constexpr const char* kJournalReplay = "journal.replay";
inline constexpr const char* kDrmDeadline = "drm.deadline";
inline constexpr const char* kFleetHeartbeat = "fleet.heartbeat";
inline constexpr const char* kFleetSpawn = "fleet.spawn";
inline constexpr const char* kFleetShardCrc = "fleet.shard_crc";
inline constexpr const char* kServeAccept = "serve.accept";
inline constexpr const char* kServeCacheRead = "serve.cache_read";
inline constexpr const char* kServeCacheEvict = "serve.cache_evict";
inline constexpr const char* kServeDeadline = "serve.deadline";
}  // namespace site

/// All registered site names (the injection catalogue), sorted.
const std::vector<std::string>& known_sites();

namespace detail {
extern std::atomic<bool> g_armed;
bool fire_slow(const char* site_name);
}  // namespace detail

/// True when the fault at `site_name` should trigger now; consumes one
/// firing from the site's budget. Near-zero cost while nothing is armed.
inline bool should_fire(const char* site_name) {
  return detail::g_armed.load(std::memory_order_relaxed) &&
         detail::fire_slow(site_name);
}

/// Arms sites from a spec string (see grammar above). Unknown site names
/// raise Error(kConfig) listing the catalogue. Arming accumulates: a second
/// arm() call for the same site replaces its budget.
void arm(const std::string& spec);

/// Arms from $OBDREL_FAULTS when it is set and non-empty.
void arm_from_env();

/// Disarms every site and resets fired counters.
void disarm();

/// Times the site actually fired since the last disarm() (test hook).
std::size_t fired(const std::string& site_name);

}  // namespace obd::fault
