// End-to-end process tests against the real CLI binary (path baked in as
// OBDREL_CLI_PATH): fleet reports must be byte-identical across shard
// counts, scheduling knobs, and chaos-injected crash schedules; retry-budget
// exhaustion must degrade gracefully (and escalate under --strict); and a
// SIGTERMed `drm run` must flush a snapshot and resume to the exact
// trajectory of an uninterrupted run.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct CmdResult {
  int status = -1;  ///< exit code (or 128+signal)
  std::string out;  ///< captured stdout
};

// Runs `cmd` under /bin/sh with stdout captured; stderr goes to `err_file`
// (the byte-identity contract is over stdout only).
CmdResult run_cmd(const std::string& cmd, const std::string& err_file) {
  const std::string full = cmd + " 2>" + err_file;
  CmdResult r;
  FILE* p = ::popen(full.c_str(), "r");
  if (p == nullptr) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, p)) > 0) r.out.append(buf, n);
  const int rc = ::pclose(p);
  if (WIFEXITED(rc)) r.status = WEXITSTATUS(rc);
  else if (WIFSIGNALED(rc)) r.status = 128 + WTERMSIG(rc);
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string last_line(const std::string& text) {
  std::istringstream in(text);
  std::string line, last;
  while (std::getline(in, line))
    if (!line.empty()) last = line;
  return last;
}

class FleetProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cli_ = OBDREL_CLI_PATH;
    ASSERT_TRUE(fs::exists(cli_)) << cli_;
    dir_ = ::testing::TempDir() + "obdrel-proc-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    cfg_ = dir_ + "/fleet.cfg";
    // Small problem so each worker's pipeline build stays cheap; 3 sweep
    // points and a coarse thickness histogram keep the math fast without
    // touching the determinism contract.
    std::ofstream(cfg_) << "design c1\n"
                           "grid 8\n"
                           "mc_bins 32\n"
                           "fleet_points 3\n"
                           "threads 2\n";
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Fleet run helper: fresh state dir per invocation unless `dir` given.
  CmdResult fleet(const std::string& tag, const std::string& extra,
                  std::string dir = "") {
    if (dir.empty()) dir = dir_ + "/state-" + tag;
    return run_cmd(cli_ + " fleet " + cfg_ + " --chips 1500 --fleet-dir " +
                       dir + " " + extra,
                   dir_ + "/err-" + tag + ".txt");
  }

  std::string err(const std::string& tag) {
    return slurp(dir_ + "/err-" + tag + ".txt");
  }

  std::string cli_;
  std::string dir_;
  std::string cfg_;
};

// ---------------------------------------------------------------------------
// Byte-identity across shard counts (1500 chips = 6 chunks; K=7 exercises
// an empty trailing shard)
// ---------------------------------------------------------------------------

TEST_F(FleetProcessTest, ReportBytesAreInvariantToShardCount) {
  const CmdResult k1 = fleet("k1", "--shards 1");
  const CmdResult k4 = fleet("k4", "--shards 4");
  const CmdResult k7 = fleet("k7", "--shards 7");
  ASSERT_EQ(k1.status, 0) << err("k1");
  ASSERT_EQ(k4.status, 0) << err("k4");
  ASSERT_EQ(k7.status, 0) << err("k7");
  EXPECT_FALSE(k1.out.empty());
  EXPECT_EQ(k1.out, k4.out);
  EXPECT_EQ(k1.out, k7.out);
  EXPECT_NE(k1.out.find("covered 1500"), std::string::npos) << k1.out;
  EXPECT_NE(k1.out.find("missing_chunks 0"), std::string::npos);
}

TEST_F(FleetProcessTest, ReportBytesAreInvariantToSchedulingKnobs) {
  // Wall time shapes scheduling only, never results: wildly different
  // heartbeat/backoff/poll settings and thread counts produce the same
  // bytes.
  const CmdResult a = fleet("a", "--shards 2");
  const CmdResult b = fleet(
      "b",
      "--shards 2 --heartbeat-ms 15 --backoff-ms 10 --backoff-cap-ms 40 "
      "--poll-ms 5 --stale-ms 800 --threads 1");
  ASSERT_EQ(a.status, 0) << err("a");
  ASSERT_EQ(b.status, 0) << err("b");
  EXPECT_EQ(a.out, b.out);
}

// ---------------------------------------------------------------------------
// Chaos: SIGKILL/SIGSTOP schedules change nothing but the wall time
// ---------------------------------------------------------------------------

TEST_F(FleetProcessTest, KillChaosRecoversBitForBit) {
  const CmdResult clean = fleet("clean", "--shards 4");
  ASSERT_EQ(clean.status, 0) << err("clean");
  const CmdResult chaos = fleet(
      "chaos",
      "--shards 4 --chaos-kill 0.08 --chaos-seed 7 --max-restarts 100 "
      "--backoff-ms 10 --backoff-cap-ms 40");
  ASSERT_EQ(chaos.status, 0) << err("chaos");
  EXPECT_EQ(clean.out, chaos.out);
  EXPECT_NE(chaos.out.find("missing_chunks 0"), std::string::npos)
      << chaos.out;
}

TEST_F(FleetProcessTest, StopChaosRecoversBitForBit) {
  const CmdResult clean = fleet("clean", "--shards 3");
  ASSERT_EQ(clean.status, 0) << err("clean");
  // SIGSTOPped workers either resume via the scheduled SIGCONT or are
  // declared wedged by the watchdog and restarted — both paths must land on
  // the same bytes.
  const CmdResult chaos = fleet(
      "chaos",
      "--shards 3 --chaos-stop 0.10 --chaos-stop-ms 80 --chaos-seed 3 "
      "--stale-ms 600 --max-restarts 100 --backoff-ms 10");
  ASSERT_EQ(chaos.status, 0) << err("chaos");
  EXPECT_EQ(clean.out, chaos.out);
}

// ---------------------------------------------------------------------------
// Durable-state resume across supervisor invocations
// ---------------------------------------------------------------------------

TEST_F(FleetProcessTest, SecondRunOverDurableStateMatchesAndIsResumed) {
  const std::string state = dir_ + "/state-shared";
  const CmdResult first = fleet("first", "--shards 4", state);
  ASSERT_EQ(first.status, 0) << err("first");
  // Same state dir, different shard count: chunk records are globally
  // keyed, so the rerun satisfies every shard from durable state.
  const CmdResult second = fleet("second", "--shards 2", state);
  ASSERT_EQ(second.status, 0) << err("second");
  EXPECT_EQ(first.out, second.out);
}

// ---------------------------------------------------------------------------
// Retry-budget exhaustion: graceful degradation, strict escalation
// ---------------------------------------------------------------------------

TEST_F(FleetProcessTest, BudgetExhaustionDegradesToAPartialReport) {
  // Every spawn fails (injected into the supervisor via the environment):
  // the report still renders — with zero coverage — and the process exits 0
  // with fleet.shard_failed warnings on stderr.
  const CmdResult bad = run_cmd(
      "OBDREL_FAULTS=fleet.spawn:1000 " + cli_ + " fleet " + cfg_ +
          " --chips 1500 --shards 2 --max-restarts 1 --backoff-ms 5 "
          "--fleet-dir " +
          dir_ + "/state-bad",
      dir_ + "/err-bad.txt");
  ASSERT_EQ(bad.status, 0) << err("bad");
  EXPECT_NE(bad.out.find("covered 0"), std::string::npos) << bad.out;
  EXPECT_NE(bad.out.find("missing_chunks 6"), std::string::npos);
  EXPECT_NE(err("bad").find("fleet.shard_failed"), std::string::npos)
      << err("bad");
}

TEST_F(FleetProcessTest, StrictModeTurnsShardFailureIntoExitSix) {
  const CmdResult bad = run_cmd(
      "OBDREL_FAULTS=fleet.spawn:1000 " + cli_ + " --strict fleet " + cfg_ +
          " --chips 1500 --shards 2 --max-restarts 1 --backoff-ms 5 "
          "--fleet-dir " +
          dir_ + "/state-strict",
      dir_ + "/err-strict.txt");
  EXPECT_EQ(bad.status, 6);  // ErrorCode::kDegraded
  // The partial report is still written before the escalation fires.
  EXPECT_NE(bad.out.find("# obdrel fleet report"), std::string::npos)
      << bad.out;
}

// ---------------------------------------------------------------------------
// Satellite: SIGTERM during `drm run` flushes a final snapshot and the
// resumed run completes the exact uninterrupted trajectory
// ---------------------------------------------------------------------------

TEST_F(FleetProcessTest, DrmRunSigtermIsResumable) {
  const std::string tel = dir_ + "/tel.csv";
  {
    std::ofstream t(tel);
    for (int i = 0; i < 400; ++i)
      t << (0.3 + 0.05 * static_cast<double>(i % 7)) << "\n";
  }
  const std::string ckpt = dir_ + "/drm-state";
  // Baseline: the full uninterrupted trajectory.
  const CmdResult full = run_cmd(
      cli_ + " drm run " + cfg_ + " " + tel + " --checkpoint-dir " + dir_ +
          "/drm-full",
      dir_ + "/err-full.txt");
  ASSERT_EQ(full.status, 0) << err("full");
  const std::string final_row = last_line(full.out);
  ASSERT_NE(final_row.find(','), std::string::npos);

  // Interrupted run: SIGTERM once at least a few rows have flushed (the
  // handlers are installed before the first row prints). The loop must
  // stop at a step boundary, flush a snapshot, and exit 0.
  const std::string part = dir_ + "/part.csv";
  const CmdResult interrupted = run_cmd(
      cli_ + " drm run " + cfg_ + " " + tel + " --checkpoint-dir " + ckpt +
          " > " + part + " & pid=$!; " +
          "for i in $(seq 1 200); do " +
          "if [ -s " + part + " ]; then break; fi; sleep 0.05; done; " +
          "kill -TERM $pid 2>/dev/null; wait $pid",
      dir_ + "/err-part.txt");
  ASSERT_EQ(interrupted.status, 0) << err("part");
  ASSERT_TRUE(fs::exists(ckpt));

  // Resume: only the remaining steps run, and the union of the two outputs
  // ends on exactly the uninterrupted run's final row.
  const CmdResult resumed = run_cmd(
      cli_ + " drm run " + cfg_ + " " + tel + " --checkpoint-dir " + ckpt +
          " --resume",
      dir_ + "/err-resume.txt");
  ASSERT_EQ(resumed.status, 0) << err("resume");
  // Last data row (header lines excluded) across both outputs.
  std::istringstream joined(slurp(part) + resumed.out);
  std::string line, last_row;
  while (std::getline(joined, line))
    if (!line.empty() && line.rfind("step,", 0) != 0) last_row = line;
  EXPECT_EQ(last_row, final_row);
}

}  // namespace
