#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/diagnostics.hpp"

namespace obd::par {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// True on pool worker threads: a region body that itself reaches a
/// parallel entry point runs that inner region inline instead of
/// deadlocking on its own pool.
thread_local bool t_is_worker = false;

/// One parallel region: a fixed set of chunks claimed through an atomic
/// cursor by the calling thread and any workers that join. Lifetime
/// protocol (the region lives on the caller's stack): a worker may only
/// enter a region by incrementing `active` under the pool mutex while the
/// region is published; the caller unpublishes the region after its own
/// drain (at which point the cursor is exhausted, so no new work starts)
/// and then waits for `active` to fall to zero before returning.
struct Region {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n_chunks = 0;
  std::size_t max_workers = 0;  ///< workers allowed besides the caller
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};
  std::mutex m;
  std::condition_variable cv;  ///< signaled when active reaches zero
  std::exception_ptr error;    ///< first chunk exception, guarded by m
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t thread_count() {
    const std::lock_guard<std::mutex> lock(admin_);
    return resolve_width();
  }

  void set_threads(std::size_t n) {
    const std::lock_guard<std::mutex> lock(admin_);
    override_ = n;
    if (!workers_.empty() && workers_.size() + 1 != resolve_width())
      stop_workers();
  }

  void shutdown() {
    const std::lock_guard<std::mutex> lock(admin_);
    stop_workers();
  }

  void run(std::size_t n_chunks,
           const std::function<void(std::size_t)>& chunk_body,
           std::size_t max_threads) {
    std::size_t width = 0;
    {
      const std::lock_guard<std::mutex> lock(admin_);
      width = resolve_width();
      if (max_threads != 0) width = std::min(width, max_threads);
      if (t_is_worker || width <= 1 || n_chunks <= 1) {
        width = 1;
      } else {
        ensure_started();
      }
    }

    if (width == 1) {
      const Clock::time_point t0 = Clock::now();
      for (std::size_t i = 0; i < n_chunks; ++i) chunk_body(i);
      record_region(n_chunks, seconds_since(t0), 0.0, /*inline_run=*/true);
      return;
    }

    Region region;
    region.body = &chunk_body;
    region.n_chunks = n_chunks;
    region.max_workers = width - 1;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      region_ = &region;
      ++generation_;
    }
    cv_.notify_all();

    // The caller works alongside the pool; when its drain returns the
    // cursor is exhausted, so unpublishing cannot strand unclaimed chunks.
    const Clock::time_point t0 = Clock::now();
    drain(region);
    const double busy = seconds_since(t0);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      region_ = nullptr;
      ++generation_;
    }
    cv_.notify_all();

    const Clock::time_point w0 = Clock::now();
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(region.m);
      region.cv.wait(lock, [&] {
        return region.active.load(std::memory_order_acquire) == 0;
      });
      error = region.error;
    }
    record_region(n_chunks, busy, seconds_since(w0), /*inline_run=*/false);
    if (error) std::rethrow_exception(error);
  }

  PoolStats stats() {
    PoolStats out;
    out.regions = regions_.load(std::memory_order_relaxed);
    out.inline_regions = inline_regions_.load(std::memory_order_relaxed);
    out.chunks = chunks_.load(std::memory_order_relaxed);
    out.busy_seconds =
        1e-9 * static_cast<double>(busy_ns_.load(std::memory_order_relaxed));
    out.wait_seconds =
        1e-9 * static_cast<double>(wait_ns_.load(std::memory_order_relaxed));
    return out;
  }

  void reset_stats() {
    regions_.store(0, std::memory_order_relaxed);
    inline_regions_.store(0, std::memory_order_relaxed);
    chunks_.store(0, std::memory_order_relaxed);
    busy_ns_.store(0, std::memory_order_relaxed);
    wait_ns_.store(0, std::memory_order_relaxed);
  }

  ~Pool() { shutdown(); }

 private:
  // Width resolution: explicit override > OBDREL_THREADS > hardware. The
  // automatic choice is resolved once and cached: run() consults the
  // width on every region (evaluators pass MonteCarloOptions::threads per
  // call), and trace playback reaches a region per phase — re-reading the
  // environment inside that path costs a getenv under the admin mutex per
  // step for a value that cannot change meaningfully mid-process.
  std::size_t resolve_width() const {
    if (override_ != 0) return override_;
    if (auto_width_ == 0) {
      std::size_t width = 0;
      if (const char* env = std::getenv("OBDREL_THREADS")) {
        const long long v = std::atoll(env);
        if (v > 0) width = static_cast<std::size_t>(v);
      }
      if (width == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        width = hw == 0 ? 1 : static_cast<std::size_t>(hw);
      }
      auto_width_ = width;
    }
    return auto_width_;
  }

  // admin_ held by caller.
  void ensure_started() {
    const std::size_t width = resolve_width();
    if (!workers_.empty() || width <= 1) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = false;
    }
    workers_.reserve(width - 1);
    for (std::size_t w = 0; w + 1 < width; ++w)
      workers_.emplace_back([this] { worker_loop(); });
  }

  // admin_ held by caller.
  void stop_workers() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
    workers_.clear();
  }

  void worker_loop() {
    t_is_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      Region* region = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
        seen = generation_;
        if (stopping_) return;
        if (region_ == nullptr) continue;
        // Joining is the lifetime handshake: active is incremented under
        // the pool mutex while the region is still published, so the
        // caller cannot destroy it underneath us. Respect the width cap.
        if (region_->active.load(std::memory_order_relaxed) >=
            region_->max_workers + 1)
          continue;
        region = region_;
        region->active.fetch_add(1, std::memory_order_acq_rel);
      }
      drain(*region);
      leave(*region);
    }
  }

  /// Claims and executes chunks until the region's cursor is exhausted.
  /// A throwing chunk cancels the remaining unclaimed chunks and parks the
  /// first exception for the caller to rethrow.
  void drain(Region& region) {
    for (;;) {
      const std::size_t i =
          region.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= region.n_chunks) break;
      try {
        (*region.body)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(region.m);
        if (!region.error) region.error = std::current_exception();
        region.next.store(region.n_chunks, std::memory_order_relaxed);
      }
      chunks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void leave(Region& region) {
    if (region.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(region.m);
      region.cv.notify_all();
    }
  }

  void record_region(std::size_t n_chunks, double busy, double wait,
                     bool inline_run) {
    regions_.fetch_add(1, std::memory_order_relaxed);
    if (inline_run) {
      inline_regions_.fetch_add(1, std::memory_order_relaxed);
      chunks_.fetch_add(n_chunks, std::memory_order_relaxed);
    }
    busy_ns_.fetch_add(static_cast<std::uint64_t>(busy * 1e9),
                       std::memory_order_relaxed);
    wait_ns_.fetch_add(static_cast<std::uint64_t>(wait * 1e9),
                       std::memory_order_relaxed);
  }

  std::mutex admin_;  ///< serializes set_threads/shutdown/region dispatch
  std::size_t override_ = 0;
  mutable std::size_t auto_width_ = 0;  ///< cached env/hardware resolution
  std::vector<std::thread> workers_;

  std::mutex mutex_;  ///< guards region publication and stopping_
  std::condition_variable cv_;
  Region* region_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumps on publish/unpublish/stop
  bool stopping_ = false;

  std::atomic<std::uint64_t> regions_{0};
  std::atomic<std::uint64_t> inline_regions_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> wait_ns_{0};
};

}  // namespace

std::size_t thread_count() { return Pool::instance().thread_count(); }

void set_threads(std::size_t n) { Pool::instance().set_threads(n); }

void shutdown() { Pool::instance().shutdown(); }

void parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t max_threads) {
  if (begin >= end) return;
  if (chunk == 0) chunk = 1;
  const std::size_t n_chunks = (end - begin + chunk - 1) / chunk;
  detail::run_chunks(
      n_chunks,
      [&](std::size_t i) {
        const std::size_t b = begin + i * chunk;
        body(b, std::min(end, b + chunk));
      },
      max_threads);
}

namespace detail {
void run_chunks(std::size_t n_chunks,
                const std::function<void(std::size_t)>& chunk_body,
                std::size_t max_threads) {
  if (n_chunks == 0) return;
  Pool::instance().run(n_chunks, chunk_body, max_threads);
}
}  // namespace detail

PoolStats stats() { return Pool::instance().stats(); }

void reset_stats() { Pool::instance().reset_stats(); }

void publish_stats() {
  const PoolStats s = stats();
  if (s.regions == 0) return;
  std::ostringstream msg;
  msg << thread_count() << " thread(s), " << s.regions << " region(s) ("
      << s.inline_regions << " inline), " << s.chunks << " chunk(s), busy "
      << s.busy_seconds << " s, wait " << s.wait_seconds << " s";
  diagnostics().stat("parallel.pool", msg.str());
}

}  // namespace obd::par
