// Ablation: integration scheme and subdomain count l0 for the eq. (28)
// double integrals.
//
// The paper states "l0 = 10 is already a reasonable number for accurate
// integral sum evaluation" (Section IV-D). This bench verifies that claim
// on our substrate and compares the paper's equal-width midpoint rule with
// the library's equal-probability-mass variant, against a high-resolution
// reference.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/analytic.hpp"
#include "core/lifetime.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;

  const chip::Design design = chip::make_benchmark(3);
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const core::AnalyticReliabilityModel model;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2);

  // Reference: equal-probability with a dense 256-cell rule.
  core::AnalyticOptions ref_opts;
  ref_opts.quadrature = core::Quadrature::kEqualProbability;
  ref_opts.cells = 256;
  const core::AnalyticAnalyzer reference(problem, ref_opts);
  const double t_ref_1 = reference.lifetime_at(core::kOneFaultPerMillion);
  const double t_ref_10 = reference.lifetime_at(core::kTenFaultsPerMillion);

  std::printf("Quadrature ablation on %s (%zu devices); reference:\n"
              "equal-probability rule with l0 = 256.\n\n",
              design.name.c_str(), design.total_devices());

  TextTable t({"scheme", "l0", "err 1/m (%)", "err 10/m (%)", "query [us]"});
  for (const auto scheme :
       {core::Quadrature::kPaperMidpoint,
        core::Quadrature::kEqualProbability}) {
    for (std::size_t l0 : {4, 6, 8, 10, 16, 32, 64}) {
      core::AnalyticOptions opts;
      opts.quadrature = scheme;
      opts.cells = l0;
      const core::AnalyticAnalyzer a(problem, opts);
      const double e1 = bench::pct_error(
          a.lifetime_at(core::kOneFaultPerMillion), t_ref_1);
      const double e10 = bench::pct_error(
          a.lifetime_at(core::kTenFaultsPerMillion), t_ref_10);
      Stopwatch sw;
      double sink = 0.0;
      const int reps = 2000;
      for (int i = 0; i < reps; ++i)
        sink += a.failure_probability(2e8 + i);
      const double micros = sw.seconds() / reps * 1e6;
      if (sink < 0.0) std::printf("?");
      t.add_row({scheme == core::Quadrature::kPaperMidpoint
                     ? "paper midpoint"
                     : "equal-probability",
                 std::to_string(l0), fmt(e1, 3), fmt(e10, 3),
                 fmt(micros, 1)});
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: the equal-width midpoint rule (the paper's scheme)\n"
      "needs l0 >= ~16-32 over our conservative +-6 sigma domain before its\n"
      "cell-mass error drops below 1%%, while the equal-probability rule is\n"
      "sub-1%% from l0 = 4 — it places nodes by marginal quantiles, so the\n"
      "Gaussian tails and the chi-square edge are handled by construction.\n"
      "(The paper's 'l0 = 10 suffices' holds for a tighter domain; the\n"
      "library defaults to the robust scheme.)\n");
  return 0;
}
