#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chip/design.hpp"
#include "common/error.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

namespace obd {
namespace {

using chip::Design;
using chip::UnitKind;

Design two_block_design() {
  Design d;
  d.name = "two";
  d.width = 10.0;
  d.height = 10.0;
  d.blocks.push_back(
      {"hot", {0, 0, 5, 10}, 1000, 1.0, UnitKind::kLogic, 0.9});
  d.blocks.push_back(
      {"cold", {5, 0, 5, 10}, 1000, 1.0, UnitKind::kCache, 0.05});
  return d;
}

TEST(Power, DynamicScalesWithActivityVddSquaredAndFrequency) {
  const Design d = two_block_design();
  power::PowerParams p;
  p.leakage_density_25c = 0.0;  // isolate dynamic power
  const power::PowerMap base = power::estimate_power(d, p);

  power::PowerParams doubled = p;
  doubled.frequency *= 2.0;
  const power::PowerMap f2 = power::estimate_power(d, doubled);
  EXPECT_NEAR(f2.block_watts[0], 2.0 * base.block_watts[0], 1e-9);

  power::PowerParams boosted = p;
  boosted.vdd = p.vdd * 1.1;
  const power::PowerMap v2 = power::estimate_power(d, boosted);
  EXPECT_NEAR(v2.block_watts[0] / base.block_watts[0], 1.21, 1e-9);

  // Activity ratio shows up directly (same kind would be needed for an
  // exact ratio; here hot logic must dominate cold cache).
  EXPECT_GT(base.block_watts[0], 5.0 * base.block_watts[1]);
}

TEST(Power, LeakageGrowsExponentiallyWithTemperature) {
  const Design d = two_block_design();
  power::PowerParams p;
  p.frequency = 0.0;  // isolate leakage... (frequency must be positive)
  p.frequency = 1.0;  // negligible dynamic power instead
  const power::PowerMap cold = power::estimate_power(d, p, {25.0, 25.0});
  const power::PowerMap hot = power::estimate_power(d, p, {108.3, 25.0});
  // exp(0.012 * 83.3) ~ 2.72.
  EXPECT_NEAR(hot.block_watts[0] / cold.block_watts[0], std::exp(1.0), 0.01);
  EXPECT_NEAR(hot.block_watts[1], cold.block_watts[1], 1e-12);
}

TEST(Power, Ev6TotalInPlausibleRange) {
  const Design d = chip::make_ev6_design();
  const power::PowerMap map = power::estimate_power(d, {});
  EXPECT_GT(map.total(), 30.0);   // a real EV6-class part burns tens of watts
  EXPECT_LT(map.total(), 150.0);
}

TEST(Power, RejectsBadTemperatureVector) {
  const Design d = two_block_design();
  EXPECT_THROW(power::estimate_power(d, {}, {25.0}), Error);
}

TEST(Thermal, UniformPowerGivesUniformTemperature) {
  Design d;
  d.name = "uniform";
  d.width = 8.0;
  d.height = 8.0;
  d.blocks.push_back({"all", {0, 0, 8, 8}, 100, 1.0, UnitKind::kLogic, 0.5});
  power::PowerMap map;
  map.block_watts = {64.0};
  thermal::ThermalParams tp;
  tp.resolution = 16;
  const auto profile = thermal::solve_thermal(d, map, tp);
  // Uniform heating with uniform vertical path: T = ambient + P * R
  // everywhere, no lateral gradients.
  EXPECT_NEAR(profile.min_c(), tp.ambient_c + 64.0 * tp.package_resistance,
              1e-3);
  EXPECT_NEAR(profile.max_c() - profile.min_c(), 0.0, 1e-3);
  // Block aggregate equals the field.
  EXPECT_NEAR(profile.block_temps_c[0], profile.min_c(), 1e-6);
}

TEST(Thermal, HotBlockIsHotterAndHeatSpreadsLaterally) {
  const Design d = two_block_design();
  const power::PowerMap map = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 32;
  const auto profile = thermal::solve_thermal(d, map, tp);
  EXPECT_GT(profile.block_temps_c[0], profile.block_temps_c[1] + 3.0);
  // Lateral conduction: the cold block still sits above ambient.
  EXPECT_GT(profile.block_temps_c[1], tp.ambient_c + 1.0);
  // Temperature lookup agrees with block averages in block interiors.
  EXPECT_NEAR(profile.at(2.5, 5.0), profile.block_temps_c[0], 10.0);
}

TEST(Thermal, EnergyBalanceHolds) {
  // Total heat leaving through the package equals total power in.
  const Design d = two_block_design();
  const power::PowerMap map = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 24;
  tp.tolerance = 1e-9;
  const auto profile = thermal::solve_thermal(d, map, tp);
  const double g_vert = (1.0 / tp.package_resistance) /
                        static_cast<double>(tp.resolution * tp.resolution);
  double out = 0.0;
  for (double t : profile.cell_temps_c) out += g_vert * (t - tp.ambient_c);
  EXPECT_NEAR(out, map.total(), 0.01 * map.total());
}

TEST(Thermal, Ev6ProfileShowsPaperLikeSpread) {
  // Fig. 1(a): hot spots ~tens of degrees above the inactive regions.
  const Design d = chip::make_ev6_design();
  const auto profile =
      thermal::power_thermal_fixed_point(d, {}, {.resolution = 32}, 2);
  const double spread = profile.max_c() - profile.min_c();
  EXPECT_GT(spread, 10.0);
  EXPECT_LT(spread, 80.0);
  // IntExec (index 7 in construction order) must be among the hottest.
  double int_exec = 0.0;
  double l2 = 0.0;
  for (std::size_t j = 0; j < d.blocks.size(); ++j) {
    if (d.blocks[j].name == "IntExec") int_exec = profile.block_temps_c[j];
    if (d.blocks[j].name == "L2") l2 = profile.block_temps_c[j];
  }
  EXPECT_GT(int_exec, l2 + 5.0);
  const double hottest =
      *std::max_element(profile.block_temps_c.begin(),
                        profile.block_temps_c.end());
  EXPECT_NEAR(int_exec, hottest, 15.0);
}

TEST(Thermal, RejectsBadInput) {
  const Design d = two_block_design();
  power::PowerMap map;
  map.block_watts = {1.0};  // wrong size
  EXPECT_THROW(thermal::solve_thermal(d, map), Error);

  map.block_watts = {1.0, 1.0};
  thermal::ThermalParams tp;
  tp.sor_omega = 2.5;
  EXPECT_THROW(thermal::solve_thermal(d, map, tp), Error);
}

TEST(Thermal, FixedPointConvergesQuickly) {
  const Design d = two_block_design();
  const auto p1 = thermal::power_thermal_fixed_point(d, {}, {.resolution = 16}, 1);
  const auto p3 = thermal::power_thermal_fixed_point(d, {}, {.resolution = 16}, 3);
  const auto p4 = thermal::power_thermal_fixed_point(d, {}, {.resolution = 16}, 4);
  // Leakage feedback raises temperatures slightly after the first pass...
  EXPECT_GE(p3.block_temps_c[0], p1.block_temps_c[0] - 1e-9);
  // ...but the iteration is essentially converged by round 3.
  EXPECT_NEAR(p4.block_temps_c[0], p3.block_temps_c[0], 0.5);
}

}  // namespace
}  // namespace obd
