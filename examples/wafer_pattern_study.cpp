// Wafer-level systematic variation study.
//
// Section II of the paper notes that part of the spatially correlated
// variation is really a deterministic wafer-level pattern (bowl/tilt,
// refs [21][23]) and that the model accommodates it via location-dependent
// nominals. This example:
//   1. runs the reliability analysis with and without a bowl+tilt pattern;
//   2. simulates a measurement campaign on the patterned process and
//      extracts the variation decomposition back from the data
//      (the ref-[20] flow), closing the loop a fab team would run.
#include <cstdio>

#include "chip/design.hpp"
#include "core/analytic.hpp"
#include "core/lifetime.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"
#include "variation/extraction.hpp"

int main() {
  using namespace obd;
  const double year = 365.25 * 24 * 3600;

  const chip::Design design = chip::make_benchmark(2);  // C2
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const core::AnalyticReliabilityModel model;

  // A bowl-shaped thinning toward the die edges plus a slight tilt:
  // edge devices end up ~1.5% thinner than center devices.
  var::WaferPattern pattern;
  pattern.bow_x = -0.018;  // nm at the x edges
  pattern.bow_y = -0.012;
  pattern.tilt_x = 0.008;

  std::printf("Wafer-pattern study on %s (%zu devices)\n\n",
              design.name.c_str(), design.total_devices());

  core::ProblemOptions flat_opts;
  core::ProblemOptions bowed_opts;
  bowed_opts.pattern = pattern;
  const auto flat = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
      flat_opts);
  const auto bowed = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
      bowed_opts);

  const core::AnalyticAnalyzer flat_an(flat);
  const core::AnalyticAnalyzer bowed_an(bowed);
  const double t_flat = flat_an.lifetime_at(core::kTenFaultsPerMillion);
  const double t_bowed = bowed_an.lifetime_at(core::kTenFaultsPerMillion);
  std::printf("10-per-million lifetime:\n");
  std::printf("  uniform nominal      : %8.2f years\n", t_flat / year);
  std::printf("  bowl+tilt pattern    : %8.2f years (%+.1f%%)\n",
              t_bowed / year, 100.0 * (t_bowed / t_flat - 1.0));
  std::printf("  (thinner edge oxide ages the edge blocks faster)\n\n");

  // Close the loop: measure the patterned process and extract the model.
  const var::GridModel grid(design.width, design.height, 20);
  const var::CanonicalForm truth = var::make_canonical_form(
      grid, var::VariationBudget{}, 0.5, 1.0, pattern);
  stats::Rng rng(77);
  const var::MeasurementSet data =
      var::simulate_measurements(truth, grid, 400, 80, rng);
  const var::ExtractionResult fit = var::extract_correlation(data);

  const var::VariationBudget reference;
  std::printf("Extraction from 400 chips x 80 sites (truth in parens):\n");
  std::printf("  nominal           %.4f nm  (%.4f)\n", fit.nominal,
              reference.nominal);
  std::printf("  sigma_global      %.4f nm  (%.4f)\n", fit.sigma_global,
              reference.sigma_global());
  std::printf("  sigma_spatial     %.4f nm  (%.4f)\n", fit.sigma_spatial,
              reference.sigma_spatial());
  std::printf("  sigma_independent %.4f nm  (%.4f)\n",
              fit.sigma_independent, reference.sigma_independent());
  std::printf("  rho_dist          %.2f      (0.50)\n", fit.rho_dist);
  std::printf("  fit RMSE          %.2e\n\n", fit.fit_rmse);

  std::printf("correlation vs distance (extracted):\n");
  for (const auto& [d, rho] : fit.correlation_curve)
    std::printf("  %6.2f mm   %.3f\n", d, rho);
  return 0;
}
