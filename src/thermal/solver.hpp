// Steady-state full-chip thermal simulation (HotSpot-like substrate).
//
// The paper derives block temperatures from HotSpot [10]. We solve the same
// physics at the same granularity: the die is discretized into a regular
// grid of cells forming a thermal RC network — lateral silicon conduction
// between adjacent cells and a vertical path to ambient through the package
// — and the steady-state temperature field is the solution of the resulting
// SPD linear system (solved with SOR). Block temperatures are area-averaged
// cell temperatures, giving the "global difference, local uniformity"
// profile of Fig. 1.
#pragma once

#include <cstddef>
#include <vector>

#include "chip/design.hpp"
#include "power/power.hpp"

namespace obd::thermal {

/// Cell-visit order of one SOR sweep.
///
/// kLexicographic is the historical row-major Gauss-Seidel order and the
/// default; its results are pinned by the regression suite. kRedBlack
/// updates the two checkerboard colors in turn; within a color no cell
/// reads another cell of the same color, so the rows of each half-sweep
/// run concurrently on the shared pool (par::parallel_reduce) and the
/// result is thread-invariant (the residual is a max, which is
/// order-independent). The two orders converge to the same fixed point of
/// the SPD system within `tolerance` but follow different iterate paths,
/// so converged fields agree to solver tolerance, not bit-for-bit.
enum class SweepOrder { kLexicographic, kRedBlack };

/// Resumable SOR iterate, used by power_thermal_fixed_point to warm-start
/// damped retries from the partial field of the failed attempt instead of
/// discarding those sweeps. solve_thermal fills it (even when it throws
/// kNonconvergence) and reads a non-empty matching-size `rise` as the
/// starting field.
struct SorState {
  std::vector<double> rise;    ///< last iterate, rise over ambient [K]
  std::size_t iterations = 0;  ///< sweeps spent producing `rise`
};

/// Physical and numerical parameters of the thermal solve.
struct ThermalParams {
  double ambient_c = 45.0;          ///< ambient/heatsink temperature [C]
  double package_resistance = 0.4;  ///< junction-to-ambient [K/W], die total
  /// Effective in-plane conductivity [W/(mm K)]. Larger than bulk silicon
  /// (~0.15) because the copper heat spreader above the die also conducts
  /// laterally; HotSpot models the spreader as separate layers, we fold it
  /// into one effective sheet.
  double conductivity = 0.60;
  double die_thickness = 0.7;       ///< [mm] die + effective spreader share
  std::size_t resolution = 64;      ///< grid cells per die side
  double sor_omega = 1.9;           ///< SOR relaxation factor in (0, 2)
  double tolerance = 1e-7;          ///< max residual [K] for convergence
  std::size_t max_iterations = 50000;
  SweepOrder sweep = SweepOrder::kLexicographic;  ///< SOR cell-visit order
};

/// Temperature field over the die plus per-block aggregates.
struct ThermalProfile {
  std::size_t resolution = 0;
  double die_width = 0.0;
  double die_height = 0.0;
  /// Cell temperatures [C], row-major, cell (col, row) at [row*resolution+col].
  std::vector<double> cell_temps_c;
  /// Area-averaged temperature per design block [C].
  std::vector<double> block_temps_c;
  /// False when the producing solve degraded (e.g. the power<->thermal
  /// fixed point gave up after damped retries and returned its last
  /// converged iterate). Always true for profiles from solve_thermal,
  /// which throws instead of degrading.
  bool converged = true;

  [[nodiscard]] double min_c() const;
  [[nodiscard]] double max_c() const;
  /// Temperature at die point (x, y) [C] (nearest cell).
  [[nodiscard]] double at(double x, double y) const;
};

/// Solves the steady-state temperature field for `power` over `design`.
/// Throws obd::Error if the SOR iteration fails to reach `tolerance`.
///
/// If `state` is non-null, a non-empty `state->rise` of matching size
/// seeds the iteration (warm start), and the final iterate plus sweep
/// count are written back before any nonconvergence throw, so a failed
/// solve still hands its partial progress to the caller.
ThermalProfile solve_thermal(const chip::Design& design,
                             const power::PowerMap& power,
                             const ThermalParams& params = {},
                             SorState* state = nullptr);

/// Runs the power <-> thermal fixed point: power at current temperatures ->
/// thermal solve -> updated leakage -> ... for `iterations` rounds
/// (2-3 suffice; leakage feedback is mild). Returns the final profile.
///
/// Fault tolerance: non-finite temperatures or a growing fixed-point
/// residual trigger bounded damped retries (relaxed SOR omega, averaged
/// temperature feedback), each reported to obd::diagnostics(). Retries
/// warm-start from the failed attempt's partial SOR iterate instead of
/// from zero, so the sweeps already spent are retained; a
/// "thermal.warm_start" stat summarizes how many. If damping cannot
/// rescue an iteration, the last converged profile is returned with
/// `converged = false` (or, when no iteration ever converged, an
/// Error(kNonconvergence) is thrown).
ThermalProfile power_thermal_fixed_point(const chip::Design& design,
                                         const power::PowerParams& pparams,
                                         const ThermalParams& tparams = {},
                                         std::size_t iterations = 3);

}  // namespace obd::thermal
