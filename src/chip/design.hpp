// Chip structural model: floorplan blocks and device populations.
//
// A Design is the paper's unit of analysis: a rectangular die partitioned
// into N functional blocks ("a region on chip with uniform temperature
// spread", Section I). Each block carries its rectangle, the number of
// devices it holds, and a functional-unit kind that the power model maps to
// switching activity and capacitance density.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace obd::chip {

/// Axis-aligned rectangle in millimeters (die coordinates, origin at the
/// lower-left die corner).
struct Rect {
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  [[nodiscard]] double area() const { return width * height; }
  [[nodiscard]] double center_x() const { return x + 0.5 * width; }
  [[nodiscard]] double center_y() const { return y + 0.5 * height; }
  [[nodiscard]] bool contains(double px, double py) const {
    return px >= x && px < x + width && py >= y && py < y + height;
  }
  /// Overlap area with another rectangle (0 if disjoint).
  [[nodiscard]] double overlap(const Rect& o) const;
};

/// Functional-unit class; drives the Wattch-like power model defaults.
enum class UnitKind {
  kCache,
  kLogic,
  kRegisterFile,
  kQueue,
  kPredictor,
  kTlb,
  kFloatingPoint,
  kCore,         ///< whole tile of a many-core design
  kInterconnect,
};

/// One temperature-uniform functional block.
struct Block {
  std::string name;
  Rect rect;
  std::size_t device_count = 0;
  /// Mean device gate area normalized to the minimum device area (the `a`
  /// of eq. 4). The block's total normalized OBD area is
  /// device_count * avg_device_area (the A_j of eq. 13).
  double avg_device_area = 1.0;
  UnitKind kind = UnitKind::kLogic;
  /// Average switching activity in [0, 1] used by the power model.
  double activity = 0.5;

  [[nodiscard]] double obd_area() const {
    return static_cast<double>(device_count) * avg_device_area;
  }
};

/// A full chip design.
struct Design {
  std::string name;
  double width = 0.0;   ///< die width in mm
  double height = 0.0;  ///< die height in mm
  std::vector<Block> blocks;

  [[nodiscard]] std::size_t total_devices() const;
  [[nodiscard]] double total_obd_area() const;
  [[nodiscard]] double die_area() const { return width * height; }

  /// Validates geometry: positive die, blocks inside the die, nonzero device
  /// counts. Throws obd::Error on violation.
  void validate() const;
};

/// Options for the synthetic design generator (the paper's C1-C5 are
/// "synthetic circuits that were automatically generated").
struct SyntheticOptions {
  std::size_t devices = 100000;
  std::size_t block_count = 10;
  double die_width = 10.0;   ///< mm
  double die_height = 10.0;  ///< mm
  std::uint64_t seed = 1;
};

/// Generates a synthetic design: the die is recursively bisected into
/// `block_count` rectangles with randomized split ratios; devices are
/// apportioned by area with multiplicative noise; unit kinds and activities
/// are randomized so the thermal profile shows realistic hot spots.
Design make_synthetic_design(const std::string& name,
                             const SyntheticOptions& options);

/// The six benchmark circuits of Section V (C1-C6). C1-C5 are synthetic
/// (50K..0.5M devices); C6 is the EV6-like processor below.
Design make_benchmark(int index);

/// EV6-like (Alpha 21264) processor design: 15 functional modules,
/// ~0.84M analyzed devices, 16mm x 16mm die — the paper's design C6 with
/// the temperature profile of Fig. 1(a).
Design make_ev6_design();

/// Many-core design for Fig. 1(b): `cores_per_side`^2 tiles plus a
/// surrounding interconnect/L2 ring, with a configurable set of active
/// (hot) cores.
Design make_manycore_design(std::size_t cores_per_side = 8,
                            double active_fraction = 0.25,
                            std::uint64_t seed = 7);

}  // namespace obd::chip
