// Dynamic reliability management over a chip lifetime — the closed loop
// the DATE'10 title promises.
//
// Simulates ten years of EV6-like operation under a mixed workload, one
// month per control step. Three policies compete at the same 10-per-million
// end-of-life budget:
//
//   static-guard : the fastest DVFS rung that survives *continuous
//                  worst-case* workload (what a guard-band sign-off allows),
//   max-perf     : always the fastest rung (ignores the budget),
//   DRM          : the budget-trajectory controller using the hybrid LUT.
//
// The DRM policy converts every cool phase into clock speed and still lands
// on the budget; the static policy wastes that headroom; max-perf blows
// through the budget years early.
#include <cstdio>

#include "chip/design.hpp"
#include "core/problem.hpp"
#include "drm/manager.hpp"
#include "stats/rng.hpp"

int main() {
  using namespace obd;
  const double year = 365.25 * 86400.0;

  const chip::Design design = chip::make_ev6_design();
  const core::AnalyticReliabilityModel model;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model,
      std::vector<double>(design.blocks.size(), 80.0), 1.2);

  const std::vector<drm::OperatingPoint> ladder{
      {"eco", 1.00, 1.2e9},
      {"base", 1.10, 1.7e9},
      {"boost", 1.20, 2.1e9},
      {"turbo", 1.28, 2.5e9},
  };
  drm::DrmOptions opts;
  opts.lifetime_target_s = 10.0 * year;
  opts.failure_budget = 1e-5;
  opts.control_interval_s = opts.lifetime_target_s / 120.0;  // ~1 month

  // A mixed workload: mostly moderate, periodic heavy bursts, quiet nights.
  stats::Rng rng(42);
  std::vector<double> workload(120);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    if (i % 12 >= 9)
      workload[i] = rng.uniform(0.85, 1.0);   // quarterly crunch
    else if (i % 3 == 0)
      workload[i] = rng.uniform(0.1, 0.3);    // idle-ish month
    else
      workload[i] = rng.uniform(0.4, 0.7);
  }

  // Static worst-case rung: fastest that survives 10 years of 100% load.
  std::size_t static_rung = 0;
  for (std::size_t r = ladder.size(); r-- > 0;) {
    drm::ReliabilityManager probe(problem, model, ladder, opts);
    for (int i = 0; i < 120; ++i) probe.step_fixed(r, 1.0);
    if (probe.damage() <= opts.failure_budget) {
      static_rung = r;
      break;
    }
  }
  std::printf("Static worst-case sign-off rung: %s (%.1f GHz)\n\n",
              ladder[static_rung].name.c_str(),
              ladder[static_rung].frequency / 1e9);

  drm::ReliabilityManager adaptive(problem, model, ladder, opts);
  drm::ReliabilityManager fixed(problem, model, ladder, opts);
  drm::ReliabilityManager maxperf(problem, model, ladder, opts);

  double perf_adaptive = 0.0;
  double perf_fixed = 0.0;
  double perf_max = 0.0;
  std::size_t rung_histogram[4] = {0, 0, 0, 0};
  std::printf("%-6s %9s %7s %12s %12s %9s\n", "year", "workload", "rung",
              "damage", "budget", "Tmax[C]");
  for (int i = 0; i < 120; ++i) {
    const drm::DrmStep s = adaptive.step(workload[i]);
    perf_adaptive += s.performance;
    ++rung_histogram[s.op_index];
    perf_fixed += fixed.step_fixed(static_rung, workload[i]).performance;
    perf_max += maxperf.step_fixed(ladder.size() - 1, workload[i]).performance;
    if (i % 12 == 11) {
      std::printf("%-6.1f %9.2f %7s %12.3e %12.3e %9.1f\n",
                  adaptive.elapsed_s() / year, workload[i],
                  ladder[s.op_index].name.c_str(), s.damage, s.budget_line,
                  s.max_temp_c);
    }
  }

  std::printf("\nEnd of 10-year horizon (budget %.0e):\n",
              opts.failure_budget);
  std::printf("  %-14s damage %.3e  avg perf %.2f GHz\n", "DRM",
              adaptive.damage(), perf_adaptive / 120.0 / 1e9);
  std::printf("  %-14s damage %.3e  avg perf %.2f GHz\n", "static-guard",
              fixed.damage(), perf_fixed / 120.0 / 1e9);
  std::printf("  %-14s damage %.3e  avg perf %.2f GHz  %s\n", "max-perf",
              maxperf.damage(), perf_max / 120.0 / 1e9,
              maxperf.damage() > opts.failure_budget ? "(BUDGET EXCEEDED)"
                                                     : "");
  std::printf("\nDRM rung usage: eco %zu, base %zu, boost %zu, turbo %zu\n",
              rung_histogram[0], rung_histogram[1], rung_histogram[2],
              rung_histogram[3]);
  std::printf("DRM performance gain over static sign-off: %+.1f%%\n",
              100.0 * (perf_adaptive / perf_fixed - 1.0));
  return 0;
}
