// Tests for the sign-off report generator and the DRM workload utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chip/design.hpp"
#include "common/error.hpp"
#include "core/report.hpp"
#include "drm/workload.hpp"
#include "power/power.hpp"
#include "stats/descriptive.hpp"

namespace obd {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "R1", {.devices = 20000, .block_count = 4, .die_width = 5.0,
               .die_height = 5.0, .seed = 91}));
    model_ = new core::AnalyticReliabilityModel();
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, {92.0, 64.0, 75.0, 58.0},
        1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* ReportFixture::design_ = nullptr;
core::AnalyticReliabilityModel* ReportFixture::model_ = nullptr;
core::ReliabilityProblem* ReportFixture::problem_ = nullptr;

TEST_F(ReportFixture, PopulatesAllSections) {
  const auto report = core::make_signoff_report(*problem_, *model_);
  EXPECT_EQ(report.design_name, "R1");
  EXPECT_EQ(report.devices, 20000u);
  EXPECT_EQ(report.blocks, 4u);
  EXPECT_DOUBLE_EQ(report.temp_max_c, 92.0);
  EXPECT_DOUBLE_EQ(report.temp_min_c, 58.0);
  ASSERT_EQ(report.lifetimes.size(), 2u);
  EXPECT_LT(report.lifetimes[0].statistical_s,
            report.lifetimes[1].statistical_s);
  for (const auto& row : report.lifetimes)
    EXPECT_LT(row.guard_s, row.statistical_s);
  ASSERT_EQ(report.ranking.size(), 4u);
  // Ranking is sorted by failure share.
  for (std::size_t i = 1; i < report.ranking.size(); ++i)
    EXPECT_GE(report.ranking[i - 1].failure_share,
              report.ranking[i].failure_share);
  EXPECT_LT(report.vdd_elasticity, 0.0);
  EXPECT_GT(report.leakage_mean_a, report.leakage_nominal_a);
}

TEST_F(ReportFixture, RenderContainsTheNumbersThatMatter) {
  const auto report = core::make_signoff_report(*problem_, *model_, {1e-6});
  const std::string text = report.render();
  EXPECT_NE(text.find("R1"), std::string::npos);
  EXPECT_NE(text.find("1e-06"), std::string::npos);
  EXPECT_NE(text.find("guard pessimism"), std::string::npos);
  EXPECT_NE(text.find("Supply elasticity"), std::string::npos);
  EXPECT_NE(text.find("Gate leakage"), std::string::npos);
  // The hottest (dominant) block leads the ranking section.
  EXPECT_NE(text.find(report.ranking.front().name), std::string::npos);
}

TEST_F(ReportFixture, RejectsBadTargets) {
  EXPECT_THROW(core::make_signoff_report(*problem_, *model_, {2.0}),
               Error);
}

TEST(Workload, SyntheticStaysInRangeAndIsReproducible) {
  stats::Rng a(3);
  stats::Rng b(3);
  const auto w1 = drm::synthetic_workload(500, {}, a);
  const auto w2 = drm::synthetic_workload(500, {}, b);
  ASSERT_EQ(w1.size(), 500u);
  EXPECT_EQ(w1, w2);
  for (double x : w1) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  // Mean lands near the configured base.
  EXPECT_NEAR(stats::mean(w1), 0.5, 0.12);
}

TEST(Workload, BurstAndIdleLevelsAppear) {
  stats::Rng rng(4);
  drm::WorkloadOptions opt;
  opt.burst_probability = 0.3;
  opt.idle_probability = 0.3;
  const auto w = drm::synthetic_workload(2000, opt, rng);
  const auto bursts = std::count_if(w.begin(), w.end(),
                                    [&](double x) { return x >= 0.99; });
  const auto idles = std::count_if(w.begin(), w.end(), [&](double x) {
    return std::fabs(x - opt.idle_level) < 1e-12;
  });
  EXPECT_NEAR(static_cast<double>(bursts), 600.0, 120.0);
  EXPECT_NEAR(static_cast<double>(idles), 600.0, 120.0);
}

TEST(Workload, RejectsBadOptions) {
  stats::Rng rng(5);
  EXPECT_THROW(drm::synthetic_workload(0, {}, rng), Error);
  drm::WorkloadOptions bad;
  bad.burst_probability = 0.8;
  bad.idle_probability = 0.5;
  EXPECT_THROW(drm::synthetic_workload(10, bad, rng), Error);
}

TEST(Workload, FromPowerTraceRanksByPower) {
  const chip::Design d = chip::make_benchmark(1);
  std::vector<power::PowerMap> trace;
  for (double scale : {0.2, 1.0, 0.6}) {
    chip::Design phased = d;
    for (auto& b : phased.blocks)
      b.activity = std::min(1.0, b.activity * scale);
    trace.push_back(power::estimate_power(phased, {}));
  }
  const auto scales = drm::workload_from_power_trace(d, trace);
  ASSERT_EQ(scales.size(), 3u);
  EXPECT_LT(scales[0], scales[2]);
  EXPECT_LT(scales[2], scales[1]);
  for (double s : scales) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Workload, FromPowerTraceValidatesInput) {
  const chip::Design d = chip::make_benchmark(1);
  EXPECT_THROW(drm::workload_from_power_trace(d, {}), Error);
  power::PowerMap wrong;
  wrong.block_watts = {1.0};
  EXPECT_THROW(drm::workload_from_power_trace(d, {wrong}), Error);
}

}  // namespace
}  // namespace obd
