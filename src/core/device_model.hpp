// Device-level OBD reliability parameters and their temperature/voltage
// dependence (Section III of the paper).
//
// The per-device time-to-breakdown is Weibull (eq. 4):
//     F(t) = 1 - exp(-a (t/alpha)^(b x))
// with characteristic life `alpha` and thickness-proportionality `b` of the
// Weibull slope (beta = b * x, the linear slope-vs-thickness law of ref [6]).
// Both alpha and b "depend on temperature and can be characterized using
// some closed-form models or look-up tables w.r.t. temperature for a given
// process" (refs [7]-[9]). We provide both characterizations:
//
//  * AnalyticReliabilityModel — the closed form. Temperature acceleration is
//    the non-Arrhenius law of Wu et al. [7][8]:
//        ln alpha(T) = ln alpha_ref + c1 (1/T - 1/Tref) + c2 (1/T^2 - 1/Tref^2)
//    (T in kelvin), voltage acceleration is exponential in (V - Vref), and
//    the Weibull slope decreases mildly with temperature.
//  * TabulatedReliabilityModel — a lookup table over temperature (as built
//    from measured test structures in practice), linearly interpolated.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

namespace obd::core {

/// Interface: device-level Weibull parameters at an operating point.
class DeviceReliabilityModel {
 public:
  virtual ~DeviceReliabilityModel() = default;

  /// Characteristic life alpha [s] of a minimum-area device at the given
  /// block temperature [C] and supply voltage [V].
  [[nodiscard]] virtual double alpha(double temp_c, double vdd) const = 0;

  /// Thickness coefficient b [1/nm] of the Weibull slope (beta = b * x).
  [[nodiscard]] virtual double b(double temp_c, double vdd) const = 0;
};

/// Parameters of the closed-form model. Defaults are calibrated for the
/// paper's setup (45 nm-class process, x0 = 2.2 nm, Vdd = 1.2 V; Table II)
/// so that beta = b * x0 ~ 1.4 at the 100 C reference and chip-level
/// ppm lifetimes land in the years decade.
struct AnalyticModelParams {
  double alpha_ref = 2.0e15;   ///< alpha at (Tref, Vref) [s]
  double temp_ref_c = 100.0;   ///< reference temperature [C]
  double vdd_ref = 1.2;        ///< reference supply [V]
  /// Non-Arrhenius temperature-acceleration coefficients (Wu et al. [7][8]):
  /// c1 [K] multiplies (1/T - 1/Tref); c2 [K^2] multiplies (1/T^2 - 1/Tref^2).
  double c1 = 4000.0;
  double c2 = 1.2e6;
  /// Exponential voltage-acceleration factor [1/V]: higher Vdd -> shorter
  /// life, alpha *= exp(-gamma_v (V - Vref)).
  double gamma_v = 12.0;
  /// Weibull slope coefficient at the reference temperature [1/nm].
  double b_ref = 0.64;
  /// Linear temperature derating of b [1/(nm K)]: b rises for cooler blocks.
  double b_temp_slope = 6.4e-4;
  /// Lower clamp on b [1/nm] (the slope stays physical at hot corners).
  double b_floor = 0.30;
};

/// Closed-form alpha(T, V) / b(T, V).
class AnalyticReliabilityModel final : public DeviceReliabilityModel {
 public:
  explicit AnalyticReliabilityModel(const AnalyticModelParams& params = {});

  [[nodiscard]] double alpha(double temp_c, double vdd) const override;
  [[nodiscard]] double b(double temp_c, double vdd) const override;

  [[nodiscard]] const AnalyticModelParams& params() const { return params_; }

 private:
  AnalyticModelParams params_;
};

/// One calibration row of a tabulated model.
struct ReliabilityTableRow {
  double temp_c = 0.0;
  double alpha = 0.0;  ///< [s]
  double b = 0.0;      ///< [1/nm]
};

/// Temperature lookup table with linear interpolation (alpha interpolated in
/// log space). Voltage acceleration applies the same exponential law as the
/// analytic model. Rows must be sorted by strictly increasing temperature.
class TabulatedReliabilityModel final : public DeviceReliabilityModel {
 public:
  TabulatedReliabilityModel(std::vector<ReliabilityTableRow> rows,
                            double vdd_ref = 1.2, double gamma_v = 12.0);

  /// Builds a table by sampling another model at `temps_c` (convenience for
  /// tests and for mimicking the measurement-driven flow).
  static TabulatedReliabilityModel from_model(
      const DeviceReliabilityModel& model, const std::vector<double>& temps_c,
      double vdd_ref = 1.2, double gamma_v = 12.0);

  [[nodiscard]] double alpha(double temp_c, double vdd) const override;
  [[nodiscard]] double b(double temp_c, double vdd) const override;

 private:
  void note_extrapolation(double temp_c) const;

  std::vector<ReliabilityTableRow> rows_;
  double vdd_ref_;
  double gamma_v_;
  /// One-shot latch for the clamped-extrapolation diagnostic, shared
  /// across copies (from_model returns by value) so the warn fires once
  /// per table, not once per copy, and stays rate-limited under threads.
  std::shared_ptr<std::atomic<bool>> extrapolation_warned_ =
      std::make_shared<std::atomic<bool>>(false);
};

}  // namespace obd::core
