// Certified Chebyshev surrogate: fit/certify correctness, the envelope
// property (surrogate answers never escape the certified tolerance on
// random in-domain queries, at every SIMD dispatch level and thread
// count), domain refusal, serialization round trip, and the exact-corner
// ConditionEvaluator the fit is referenced against.
//
// The certificate's value rests on two properties checked here: the
// certification probes are deterministic (re-running certify() reproduces
// the stored certificate bit for bit), and evaluation is bit-identical
// across scalar/AVX2/AVX-512 dispatch (the clenshaw_batch contract), so a
// certificate earned at one tier holds at all of them.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "chip/design.hpp"
#include "common/parallel.hpp"
#include "core/condition_eval.hpp"
#include "core/device_model.hpp"
#include "core/hybrid.hpp"
#include "core/problem.hpp"
#include "simd/dispatch.hpp"
#include "surrogate/chebyshev.hpp"
#include "surrogate/surrogate.hpp"
#include "variation/model.hpp"

namespace obd {
namespace {

constexpr double kYear = 365.25 * 24.0 * 3600.0;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

struct GlobalsGuard {
  simd::Level saved = simd::active_level();
  ~GlobalsGuard() {
    simd::set_level(saved);
    par::set_threads(0);
  }
};

// Reduced-size options so a fit costs a fraction of a second in the test;
// the bench exercises default resolution.
surrogate::SurrogateOptions test_options() {
  surrogate::SurrogateOptions o;
  o.n_t = 11;
  o.n_dt = 7;
  o.n_vdd = 5;
  o.n_act = 4;
  o.fit_n_gamma = 160;
  o.fit_n_b = 64;
  o.probe_points = 128;
  return o;
}

class SurrogateFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "SUR", {.devices = 20000, .block_count = 14, .die_width = 6.0,
                .die_height = 6.0, .seed = 97}));
    model_ = new core::AnalyticReliabilityModel();
    temps_ = new std::vector<double>(design_->blocks.size());
    for (std::size_t j = 0; j < temps_->size(); ++j)
      (*temps_)[j] = 55.0 + 40.0 * design_->blocks[j].activity;
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 8;
    oxide_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
    core::ProblemOptions all_opts = opts;
    all_opts.mechanisms.nbti = true;
    all_opts.mechanisms.em = true;
    all_opts.mechanisms.hci = true;
    all_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, all_opts));
  }
  static void TearDownTestSuite() {
    delete all_;
    delete oxide_;
    delete temps_;
    delete model_;
    delete design_;
  }

  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static std::vector<double>* temps_;
  static core::ReliabilityProblem* oxide_;
  static core::ReliabilityProblem* all_;
};

chip::Design* SurrogateFixture::design_ = nullptr;
core::AnalyticReliabilityModel* SurrogateFixture::model_ = nullptr;
std::vector<double>* SurrogateFixture::temps_ = nullptr;
core::ReliabilityProblem* SurrogateFixture::oxide_ = nullptr;
core::ReliabilityProblem* SurrogateFixture::all_ = nullptr;

// ------------------------------------------------------------------------
// ChebAxis / ChebTensor basics

TEST(ChebAxis, NodesDescendFromHiAndMidpointsInterleave) {
  surrogate::ChebAxis a{-2.0, 3.0, 9};
  EXPECT_DOUBLE_EQ(a.node(0), 3.0);
  EXPECT_DOUBLE_EQ(a.node(8), -2.0);
  for (std::size_t i = 0; i + 1 < a.n; ++i) {
    EXPECT_GT(a.node(i), a.node(i + 1));
    EXPECT_GT(a.node(i), a.midpoint(i));
    EXPECT_GT(a.midpoint(i), a.node(i + 1));
  }
  EXPECT_EQ(a.midpoint_count(), 8u);
  surrogate::ChebAxis single{-1.0, 1.0, 1};
  EXPECT_DOUBLE_EQ(single.node(0), 0.0);
  EXPECT_EQ(single.midpoint_count(), 1u);
}

TEST(ChebTensor, ReproducesPolynomialsExactly) {
  // A degree-(3,2) polynomial is inside the span of a (5,4)-node grid, so
  // interpolation is exact up to rounding.
  std::vector<surrogate::ChebAxis> axes = {{-1.5, 2.0, 5}, {0.5, 3.0, 4}};
  const auto f = [](const double* x) {
    return 1.0 + x[0] * (2.0 - x[1]) + 0.25 * x[0] * x[0] * x[0] -
           0.5 * x[1] * x[1] * (1.0 + x[0]);
  };
  const auto tensor = surrogate::ChebTensor::fit(axes, f);
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> u0(-1.5, 2.0), u1(0.5, 3.0);
  for (int i = 0; i < 200; ++i) {
    const double x[2] = {u0(rng), u1(rng)};
    EXPECT_NEAR(tensor.eval(x), f(x), 1e-12);
  }
}

TEST(ChebTensor, ContractTailMatchesFullEval) {
  std::vector<surrogate::ChebAxis> axes = {
      {0.0, 1.0, 6}, {-1.0, 1.0, 4}, {2.0, 5.0, 3}};
  const auto f = [](const double* x) {
    return std::sin(2.0 * x[0]) + x[1] * x[2] + 0.1 * x[0] * x[1];
  };
  const auto tensor = surrogate::ChebTensor::fit(axes, f);
  const double tail[2] = {0.3, 4.1};
  const auto pencil = tensor.contract_tail(tail);
  ASSERT_EQ(pencil.size(), 6u);
  for (double x0 : {0.05, 0.4, 0.77, 0.99}) {
    const double x[3] = {x0, tail[0], tail[1]};
    EXPECT_TRUE(
        same_bits(tensor.eval_pencil(pencil, x0), tensor.eval(x)))
        << "pencil eval must be bit-identical to the full contraction";
  }
}

// ------------------------------------------------------------------------
// ConditionEvaluator: the exact reference

TEST_F(SurrogateFixture, ConditionEvaluatorBaselineMatchesHybrid) {
  core::HybridOptions hopts;
  hopts.n_gamma = 60;
  hopts.n_b = 40;
  const core::HybridEvaluator hybrid(*oxide_, hopts);
  core::ConditionEvaluator cond(hybrid);

  // The identity corner must reproduce the problem's own alpha/b bits,
  // hence the plain table evaluation.
  cond.set_corner(0.0, oxide_->vdd(), 1.0);
  std::vector<double> alphas, bs;
  for (const auto& blk : oxide_->blocks()) {
    alphas.push_back(blk.alpha);
    bs.push_back(blk.b);
  }
  for (double ty : {1.0, 5.0, 20.0}) {
    EXPECT_TRUE(same_bits(
        cond.evaluate(ty * kYear),
        hybrid.failure_probability_with(ty * kYear, alphas, bs)));
  }

  // A hotter corner strictly increases failure probability.
  const double f0 = cond.evaluate(10.0 * kYear);
  cond.set_corner(10.0, oxide_->vdd(), 1.0);
  EXPECT_GT(cond.evaluate(10.0 * kYear), f0);

  // Re-applying the identical corner dirties nothing (bit-comparing
  // setters) — the serve session reuse path.
  const auto before = cond.stats();
  cond.set_corner(10.0, oxide_->vdd(), 1.0);
  (void)cond.evaluate(10.0 * kYear);
  const auto after = cond.stats();
  EXPECT_EQ(after.full_rebuilds, before.full_rebuilds);
  EXPECT_EQ(after.rows_refreshed, before.rows_refreshed);
}

TEST_F(SurrogateFixture, ConditionEvaluatorPerBlockOverride) {
  core::HybridOptions hopts;
  hopts.n_gamma = 60;
  hopts.n_b = 40;
  const core::HybridEvaluator hybrid(*oxide_, hopts);
  core::ConditionEvaluator cond(hybrid);
  cond.set_corner(5.0, 1.25, 1.0);
  const double f_uniform = cond.evaluate(8.0 * kYear);
  cond.set_block_dt(3, 25.0);
  const double f_hot = cond.evaluate(8.0 * kYear);
  EXPECT_GT(f_hot, f_uniform);
  // Restoring the block restores the uniform-corner bits.
  cond.set_block_dt(3, 5.0);
  EXPECT_TRUE(same_bits(cond.evaluate(8.0 * kYear), f_uniform));
}

// ------------------------------------------------------------------------
// Fit + certification

TEST_F(SurrogateFixture, FitCertifiesOxideProblem) {
  const auto opts = test_options();
  const auto model = surrogate::SurrogateModel::fit(*oxide_, opts);
  const auto& cert = model.certificate();
  EXPECT_TRUE(cert.certified);
  EXPECT_LE(cert.max_rel_error, opts.tol);
  EXPECT_LE(cert.mean_rel_error, cert.max_rel_error);
  EXPECT_GT(cert.probes, opts.probe_points);  // grid probes on top

  // Trivial stack: one oxide channel, activity axis collapsed to a node.
  ASSERT_EQ(model.channels().size(), 1u);
  EXPECT_EQ(model.channels()[0].axes()[3].n, 1u);

  // Domain box derived from the options, centered on the problem vdd.
  EXPECT_DOUBLE_EQ(model.domain().dt_lo, -opts.dt_c);
  EXPECT_DOUBLE_EQ(model.domain().vdd_lo, 1.2 - opts.dvdd);
  EXPECT_DOUBLE_EQ(model.domain().t_hi, opts.t_hi_years * kYear);
}

TEST_F(SurrogateFixture, EnvelopePropertyAcrossTiersAndThreads) {
  GlobalsGuard guard;
  const auto opts = test_options();
  const auto model = surrogate::SurrogateModel::fit(*oxide_, opts);
  ASSERT_TRUE(model.certificate().certified);

  core::HybridEvaluator reference(*oxide_,
                                  surrogate::fit_reference_options(*oxide_, opts));
  core::ConditionEvaluator exact(reference);

  // Random in-domain queries, fixed seed. The envelope property: every
  // certified answer stays within tol of the exact engine.
  std::mt19937 rng(20260808);
  const auto& d = model.domain();
  std::uniform_real_distribution<double> udt(d.dt_lo, d.dt_hi);
  std::uniform_real_distribution<double> uvdd(d.vdd_lo, d.vdd_hi);
  std::uniform_real_distribution<double> uact(d.act_lo, d.act_hi);
  std::uniform_real_distribution<double> ult(std::log(d.t_lo),
                                             std::log(d.t_hi));
  struct Query {
    double dt, vdd, act, t;
  };
  std::vector<Query> queries;
  for (int i = 0; i < 160; ++i)
    queries.push_back({udt(rng), uvdd(rng), uact(rng), std::exp(ult(rng))});

  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::can_use_avx2()) levels.push_back(simd::Level::kAvx2);
  if (simd::can_use_avx512()) levels.push_back(simd::Level::kAvx512);

  std::vector<double> baseline;
  for (simd::Level level : levels) {
    simd::set_level(level);
    for (int threads : {1, 7}) {
      par::set_threads(threads);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const Query& q = queries[i];
        ASSERT_TRUE(model.in_domain(q.dt, q.vdd, q.act, q.t));
        const double s = model.evaluate(q.dt, q.vdd, q.act, q.t);
        if (level == levels[0] && threads == 1) {
          exact.set_corner(q.dt, q.vdd, q.act);
          const double r = exact.evaluate(q.t);
          const double rel =
              std::abs(s - r) / std::max(std::abs(r), 1e-12);
          EXPECT_LE(rel, model.tol())
              << "query " << i << " escaped the certified envelope";
          baseline.push_back(s);
        } else {
          // clenshaw_batch's bit-identity contract: the certificate
          // earned at one tier holds at every tier.
          EXPECT_TRUE(same_bits(s, baseline[i]))
              << "level=" << static_cast<int>(level)
              << " threads=" << threads << " query " << i;
        }
      }
    }
  }
}

TEST_F(SurrogateFixture, NonTrivialStackUsesActivityAxis) {
  // Default node counts: the reduced test_options() that suffice for the
  // single oxide channel leave the aging channels short of 1e-4 on this
  // design (the competing-mechanism sum is the hard case the defaults
  // are sized for). Only the probe budget is trimmed here.
  surrogate::SurrogateOptions opts;
  opts.probe_points = 256;
  const auto model = surrogate::SurrogateModel::fit(*all_, opts);
  // Oxide channel plus one channel per enabled aging mechanism; the
  // aging channels carry the activity axis, the oxide channel does not.
  ASSERT_EQ(model.channels().size(), 4u);
  EXPECT_EQ(model.channels()[0].axes()[3].n, 1u);
  for (std::size_t c = 1; c < 4; ++c)
    EXPECT_EQ(model.channels()[c].axes()[3].n, opts.n_act);
  EXPECT_TRUE(model.certificate().certified)
      << "max_rel_error=" << model.certificate().max_rel_error;

  // Activity must actually move the answer through the aging stack.
  const double lo = model.evaluate(0.0, 1.2, 0.6, 10.0 * kYear);
  const double hi = model.evaluate(0.0, 1.2, 1.4, 10.0 * kYear);
  EXPECT_NE(lo, hi);
}

TEST_F(SurrogateFixture, CertifyIsDeterministic) {
  const auto opts = test_options();
  const auto model = surrogate::SurrogateModel::fit(*oxide_, opts);
  core::HybridEvaluator reference(*oxide_,
                                  surrogate::fit_reference_options(*oxide_, opts));
  core::ConditionEvaluator exact(reference);
  const auto cert =
      surrogate::certify(model, exact, opts.probe_points, opts.tol);
  EXPECT_TRUE(same_bits(cert.max_rel_error,
                        model.certificate().max_rel_error));
  EXPECT_TRUE(same_bits(cert.mean_rel_error,
                        model.certificate().mean_rel_error));
  EXPECT_EQ(cert.probes, model.certificate().probes);
}

TEST_F(SurrogateFixture, AbsurdToleranceRefusesCertification) {
  auto opts = test_options();
  opts.n_t = 6;
  opts.n_dt = 4;
  opts.n_vdd = 3;
  opts.probe_points = 64;
  opts.tol = 1e-14;
  const auto model = surrogate::SurrogateModel::fit(*oxide_, opts);
  EXPECT_FALSE(model.certificate().certified);
  EXPECT_GT(model.certificate().max_rel_error, opts.tol);
}

TEST_F(SurrogateFixture, DomainRefusalPerAxis) {
  const auto opts = test_options();
  const auto model = surrogate::SurrogateModel::fit(*oxide_, opts);
  const auto& d = model.domain();
  const double t_mid = 10.0 * kYear;
  EXPECT_TRUE(model.in_domain(0.0, 1.2, 1.0, t_mid));
  EXPECT_FALSE(model.in_domain(d.dt_hi + 1.0, 1.2, 1.0, t_mid));
  EXPECT_FALSE(model.in_domain(d.dt_lo - 1.0, 1.2, 1.0, t_mid));
  EXPECT_FALSE(model.in_domain(0.0, d.vdd_hi + 0.01, 1.0, t_mid));
  EXPECT_FALSE(model.in_domain(0.0, 1.2, d.act_lo - 0.1, t_mid));
  EXPECT_FALSE(model.in_domain(0.0, 1.2, 1.0, d.t_hi * 1.01));
  EXPECT_FALSE(model.in_domain(0.0, 1.2, 1.0, d.t_lo * 0.99));
  // Boundary points are inside (closed box).
  EXPECT_TRUE(model.in_domain(d.dt_hi, d.vdd_hi, d.act_hi, d.t_hi));
}

TEST_F(SurrogateFixture, PlanCornerMatchesEvaluate) {
  const auto opts = test_options();
  const auto model = surrogate::SurrogateModel::fit(*oxide_, opts);
  const auto pencil = model.plan_corner(4.0, 1.23, 1.0);
  for (double ty : {1.0, 3.0, 11.0, 39.0}) {
    EXPECT_TRUE(same_bits(model.evaluate_at(pencil, ty * kYear),
                          model.evaluate(4.0, 1.23, 1.0, ty * kYear)));
  }
}

// ------------------------------------------------------------------------
// Serialization

TEST_F(SurrogateFixture, SaveLoadRoundTripIsExact) {
  auto opts = test_options();
  opts.n_t = 7;
  opts.n_dt = 4;
  opts.n_vdd = 3;
  opts.probe_points = 64;
  const auto model = surrogate::SurrogateModel::fit(*oxide_, opts);
  const std::string text = model.save_text();
  const auto loaded = surrogate::SurrogateModel::load_text(text);
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(loaded->channels().size(), model.channels().size());
  for (std::size_t c = 0; c < model.channels().size(); ++c) {
    const auto& got = loaded->channels()[c].coefficients();
    const auto& want = model.channels()[c].coefficients();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_TRUE(same_bits(got[i], want[i]));
  }
  EXPECT_TRUE(same_bits(loaded->certificate().max_rel_error,
                        model.certificate().max_rel_error));
  EXPECT_EQ(loaded->certificate().certified, model.certificate().certified);
  EXPECT_TRUE(same_bits(loaded->domain().t_hi, model.domain().t_hi));

  // Evaluation through the loaded model is bit-identical.
  const double q[4] = {3.0, 1.21, 1.0, 12.0 * kYear};
  EXPECT_TRUE(same_bits(loaded->evaluate(q[0], q[1], q[2], q[3]),
                        model.evaluate(q[0], q[1], q[2], q[3])));
  // Save of the load reproduces the bytes.
  EXPECT_EQ(loaded->save_text(), text);
}

TEST(SurrogateLoad, RejectsMalformedText) {
  EXPECT_FALSE(surrogate::SurrogateModel::load_text("").has_value());
  EXPECT_FALSE(
      surrogate::SurrogateModel::load_text("obdrel-surrogate 2\n").has_value());
  EXPECT_FALSE(surrogate::SurrogateModel::load_text(
                   "obdrel-surrogate 1\ndomain 0 1 0 1 0 1 0 1\n"
                   "channels 1\naxes 1\n"
                   "axis 0 1 4\ncoeffs 3\n1\n2\n3\n")
                   .has_value());  // count mismatch
  EXPECT_FALSE(surrogate::SurrogateModel::load_text(
                   "obdrel-surrogate 1\ndomain 0 1 0 1 0 1 0 1\n"
                   "channels 1\naxes 1\n"
                   "axis 0 1 2\ncoeffs 2\n1\n2\n")
                   .has_value());  // truncated: no cert/end
}

}  // namespace
}  // namespace obd
