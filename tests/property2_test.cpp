// Second parameterized property suite: cross-component invariants
// (hybrid-vs-analytic agreement over time sweeps, thermal scaling laws,
// BLOD geometry sweeps, duty-cycle consistency).
#include <gtest/gtest.h>

#include <cmath>

#include "chip/design.hpp"
#include "core/analytic.hpp"
#include "core/duty_cycle.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"
#include "variation/model.hpp"

namespace obd {
namespace {

// Shared small problem for the sweeps (built once).
const core::ReliabilityProblem& shared_problem() {
  static const core::ReliabilityProblem problem = [] {
    const chip::Design design = chip::make_synthetic_design(
        "P2", {.devices = 25000, .block_count = 5, .die_width = 5.0,
               .die_height = 5.0, .seed = 111});
    static const core::AnalyticReliabilityModel model;
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    return core::ReliabilityProblem::build(
        design, var::VariationBudget{}, model,
        {90.0, 66.0, 75.0, 58.0, 83.0}, 1.2, opts);
  }();
  return problem;
}

// ---------------------------------------------------------------------------
// Hybrid vs analytic across a decade sweep of query times.

class HybridAgreement : public ::testing::TestWithParam<double> {};

TEST_P(HybridAgreement, MatchesAnalyticWithinInterpolationError) {
  const double t = GetParam();
  static const core::AnalyticAnalyzer fast(shared_problem());
  static const core::HybridEvaluator hybrid(shared_problem());
  const double ff = fast.failure_probability(t);
  const double fh = hybrid.failure_probability(t);
  if (ff > 1e-300) {
    EXPECT_NEAR(fh / ff, 1.0, 0.05) << "t=" << t;
  } else {
    EXPECT_LT(fh, 1e-250);
  }
}

INSTANTIATE_TEST_SUITE_P(TimeSweep, HybridAgreement,
                         ::testing::Values(1e6, 1e7, 3e7, 1e8, 3e8, 1e9,
                                           3e9, 1e10, 1e11));

// ---------------------------------------------------------------------------
// Thermal scaling: temperature rise scales linearly with power; the field
// is invariant to uniform power scaling up to that factor.

class ThermalScaling : public ::testing::TestWithParam<double> {};

TEST_P(ThermalScaling, RiseIsLinearInPower) {
  const double scale = GetParam();
  const chip::Design d = chip::make_benchmark(1);
  const auto base_power = power::estimate_power(d, {});
  power::PowerMap scaled;
  for (double w : base_power.block_watts)
    scaled.block_watts.push_back(w * scale);
  thermal::ThermalParams tp;
  tp.resolution = 16;
  const auto base = thermal::solve_thermal(d, base_power, tp);
  const auto hot = thermal::solve_thermal(d, scaled, tp);
  for (std::size_t j = 0; j < d.blocks.size(); ++j) {
    const double rise_base = base.block_temps_c[j] - tp.ambient_c;
    const double rise_hot = hot.block_temps_c[j] - tp.ambient_c;
    EXPECT_NEAR(rise_hot / rise_base, scale, 0.01 * scale) << "block " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(PowerSweep, ThermalScaling,
                         ::testing::Values(0.25, 0.5, 2.0, 3.5));

// ---------------------------------------------------------------------------
// BLOD invariants across block geometry: u_sigma shrinks as blocks span
// more decorrelated area; v stays within physical bounds.

struct BlodCase {
  double x, y, w, h;
  std::size_t devices;
};

class BlodGeometry : public ::testing::TestWithParam<BlodCase> {};

TEST_P(BlodGeometry, MomentsStayPhysical) {
  const BlodCase c = GetParam();
  const var::VariationBudget budget;
  static const var::GridModel grid(10.0, 10.0, 10);
  static const var::CanonicalForm canonical =
      var::make_canonical_form(grid, budget, 0.5, 1.0);

  chip::Design d;
  d.name = "g";
  d.width = 10.0;
  d.height = 10.0;
  d.blocks.push_back({"b", {c.x, c.y, c.w, c.h}, c.devices, 1.0,
                      chip::UnitKind::kLogic, 0.5});
  const auto layout = var::assign_devices(d, grid);
  const core::BlodMoments blod(canonical, layout.weights[0], c.devices);

  // u sigma bounded by the full correlated sigma (averaging cannot
  // amplify) and at least the global component (shared by everything).
  const double sigma_corr = std::sqrt(
      budget.sigma_global() * budget.sigma_global() +
      budget.sigma_spatial() * budget.sigma_spatial());
  EXPECT_LE(blod.u_sigma(), sigma_corr * 1.0001);
  EXPECT_GE(blod.u_sigma(), budget.sigma_global() * 0.999);

  // v mean between the residual floor and total variance.
  const double floor = budget.sigma_independent() * budget.sigma_independent();
  const double total = budget.sigma_total() * budget.sigma_total();
  EXPECT_GE(blod.v_mean(), floor * 0.999);
  EXPECT_LE(blod.v_mean(), total);

  // Nominal is preserved exactly (uniform-nominal model).
  EXPECT_NEAR(blod.u_nominal(), budget.nominal, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    GeometrySweep, BlodGeometry,
    ::testing::Values(BlodCase{0, 0, 1, 1, 2000},     // single cell
                      BlodCase{0, 0, 5, 5, 20000},    // quarter die
                      BlodCase{0, 0, 10, 10, 50000},  // full die
                      BlodCase{4, 4, 2, 2, 5000},     // center patch
                      BlodCase{0, 0, 10, 1, 8000},    // full-width stripe
                      BlodCase{9, 9, 1, 1, 3000}));   // corner cell

TEST(BlodGeometryOrdering, WiderBlocksAverageAwaySpatialVariance) {
  const var::VariationBudget budget;
  const var::GridModel grid(10.0, 10.0, 10);
  const var::CanonicalForm canonical =
      var::make_canonical_form(grid, budget, 0.25, 1.0);
  auto sigma_for = [&](double w, double h) {
    chip::Design d;
    d.name = "g";
    d.width = 10.0;
    d.height = 10.0;
    d.blocks.push_back(
        {"b", {0, 0, w, h}, 10000, 1.0, chip::UnitKind::kLogic, 0.5});
    const auto layout = var::assign_devices(d, grid);
    return core::BlodMoments(canonical, layout.weights[0], 10000).u_sigma();
  };
  // With a short correlation length, block-mean dispersion decreases as
  // the block grows (spatial averaging).
  EXPECT_GT(sigma_for(1, 1), sigma_for(5, 5));
  EXPECT_GT(sigma_for(5, 5), sigma_for(10, 10));
}

// ---------------------------------------------------------------------------
// Duty-cycle consistency: splitting a single condition into n identical
// phases changes nothing, for any n.

class DutySplit : public ::testing::TestWithParam<int> {};

TEST_P(DutySplit, IdenticalPhasesCollapse) {
  const int n = GetParam();
  const auto& problem = shared_problem();
  core::WorkloadPhase whole;
  whole.name = "w";
  whole.fraction = 1.0;
  for (const auto& b : problem.blocks()) {
    whole.alphas.push_back(b.alpha);
    whole.bs.push_back(b.b);
  }
  std::vector<core::WorkloadPhase> split;
  for (int i = 0; i < n; ++i) {
    auto p = whole;
    p.fraction = 1.0 / n;
    split.push_back(std::move(p));
  }
  const core::DutyCycleAnalyzer one(problem, {whole});
  const core::DutyCycleAnalyzer many(problem, split);
  const double t = 2e8;
  EXPECT_NEAR(many.failure_probability(t) / one.failure_probability(t), 1.0,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(SplitSweep, DutySplit, ::testing::Values(2, 3, 7));

}  // namespace
}  // namespace obd
