// Shared evaluation kernel for the statistical methods.
//
// Both st_fast (analytic marginals, eq. 28) and st_MC (numerical joint PDF)
// reduce each block's ensemble integral to a weighted sum over (u, v)
// evaluation nodes:
//
//   E[1 - exp(-A_j g(u_j, v_j))] ~ sum_n w_n (1 - exp(-A_j g(u_n, v_n)))
//
// st_fast derives the nodes/weights from quadrature over the marginal PDFs;
// st_MC derives them from the bins of a sampled joint histogram. The node
// lists depend only on the process variation model — not on t — so they are
// built once per problem and reused across reliability queries.
#pragma once

#include <vector>

#include "core/closed_form.hpp"
#include "core/problem.hpp"

namespace obd::core {

/// One (u, v) evaluation node with its probability weight.
struct UvNode {
  double u = 0.0;
  double v = 0.0;
  double weight = 0.0;
};

/// Chip failure probability at time t from per-block node lists, composed
/// across blocks in survival space (weakest link, eq. 7-8):
/// F(t) = 1 - prod_j (1 - F_j) with F_j = sum_n w_n (1 - exp(-A_j g)).
/// (Per-block marginals suffice by the independence step of eq. 19-21; the
/// survival product keeps F(t) exact at high failure levels where the
/// first-order sum-of-blocks approximation overestimates.)
double failure_from_nodes(const std::vector<BlockParams>& blocks,
                          const std::vector<std::vector<UvNode>>& nodes,
                          double t);

/// Mechanism-aware variant: composes the per-block oxide failures with the
/// stack's aging mechanisms and spare groups. With a trivial stack this is
/// bit-identical to the three-argument overload (same loop, same op order).
double failure_from_nodes(const std::vector<BlockParams>& blocks,
                          const std::vector<std::vector<UvNode>>& nodes,
                          double t, const mech::MechanismStack& stack);

/// Failure contribution of a single block from its node list.
double block_failure_from_nodes(const BlockParams& block,
                                const std::vector<UvNode>& nodes, double t);

}  // namespace obd::core
