// Tests for the statistical leakage analyzer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chip/design.hpp"
#include "common/error.hpp"
#include "core/leakage.hpp"
#include "stats/descriptive.hpp"

namespace obd::core {
namespace {

class LeakageFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "L1", {.devices = 20000, .block_count = 4, .die_width = 5.0,
               .die_height = 5.0, .seed = 41}));
    model_ = new AnalyticReliabilityModel();
    temps_ = new std::vector<double>{85.0, 60.0, 72.0, 95.0};
    ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new ReliabilityProblem(ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete temps_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    temps_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  static chip::Design* design_;
  static AnalyticReliabilityModel* model_;
  static std::vector<double>* temps_;
  static ReliabilityProblem* problem_;
};

chip::Design* LeakageFixture::design_ = nullptr;
AnalyticReliabilityModel* LeakageFixture::model_ = nullptr;
std::vector<double>* LeakageFixture::temps_ = nullptr;
ReliabilityProblem* LeakageFixture::problem_ = nullptr;

TEST_F(LeakageFixture, MeanMatchesSampledAverage) {
  const LeakageAnalyzer leak(*problem_);
  const auto samples = leak.sample_chip_leakage(20000, 3);
  EXPECT_NEAR(stats::mean(samples) / leak.mean(), 1.0, 0.02);
}

TEST_F(LeakageFixture, MeanExceedsNominalByJensen) {
  // Variation always increases expected leakage (convexity of exp):
  // E[I] > I(nominal die).
  const LeakageAnalyzer leak(*problem_);
  EXPECT_GT(leak.mean(), leak.nominal_chip());
  // But not absurdly (4% 3-sigma thickness -> tens of percent of margin).
  EXPECT_LT(leak.mean(), 3.0 * leak.nominal_chip());
}

TEST_F(LeakageFixture, BlockMeansSumToChipMean) {
  const LeakageAnalyzer leak(*problem_);
  double sum = 0.0;
  for (std::size_t j = 0; j < problem_->blocks().size(); ++j)
    sum += leak.block_mean(j);
  EXPECT_NEAR(sum, leak.mean(), 1e-12 * leak.mean());
}

TEST_F(LeakageFixture, HotterBlocksLeakMore) {
  const LeakageAnalyzer leak(*problem_);
  // Normalize by area: per-unit-area leakage must order by temperature.
  std::vector<std::pair<double, double>> temp_leak;
  for (std::size_t j = 0; j < problem_->blocks().size(); ++j)
    temp_leak.emplace_back((*temps_)[j], leak.block_mean(j) /
                                             problem_->blocks()[j].area);
  std::sort(temp_leak.begin(), temp_leak.end());
  for (std::size_t i = 1; i < temp_leak.size(); ++i)
    EXPECT_GT(temp_leak[i].second, temp_leak[i - 1].second);
}

TEST_F(LeakageFixture, DistributionIsRightSkewedAcrossChips) {
  // The shared die-to-die thickness shift makes total leakage lognormal-ish:
  // mean > median.
  const LeakageAnalyzer leak(*problem_);
  auto samples = leak.sample_chip_leakage(20000, 5);
  const double mean = stats::mean(samples);
  const double median = stats::quantile(samples, 0.5);
  EXPECT_GT(mean, median);
  // Spread is material: the 95th percentile chip leaks notably more than
  // the median chip (the "leakage lottery" of global variation).
  EXPECT_GT(stats::quantile(samples, 0.95) / median, 1.2);
}

TEST_F(LeakageFixture, VddAndSlopeKnobs) {
  LeakageParams hot_vdd;
  const auto problem_hi = ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, *temps_, 1.3,
      [] {
        ProblemOptions o;
        o.grid_cells_per_side = 10;
        return o;
      }());
  const LeakageAnalyzer lo(*problem_);
  const LeakageAnalyzer hi(problem_hi);
  EXPECT_NEAR(hi.mean() / lo.mean(), std::exp(3.0 * 0.1), 0.05);
}

TEST_F(LeakageFixture, RejectsBadParams) {
  LeakageParams bad;
  bad.i_ref = -1.0;
  EXPECT_THROW(LeakageAnalyzer(*problem_, bad), obd::Error);
  bad = {};
  bad.thickness_slope = 0.0;
  EXPECT_THROW(LeakageAnalyzer(*problem_, bad), obd::Error);
}

}  // namespace
}  // namespace obd::core
