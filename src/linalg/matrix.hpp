// Dense row-major matrix and small vector helpers.
//
// The spatial-correlation machinery (Section II of the paper) needs only
// dense symmetric matrices of moderate size (the n x n grid covariance,
// n <= ~1000), so a simple contiguous row-major container is sufficient and
// cache-friendly.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace obd::la {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a square identity matrix of dimension n.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Pointer to the first element of row r (contiguous cols() doubles).
  [[nodiscard]] double* row(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  /// y = A * x. Requires x.size() == cols(). Runs on the dispatched SIMD
  /// matvec kernel: at scalar dispatch each row is the historical
  /// single-accumulator ascending-index dot (bit-identical to the old
  /// loop); the AVX2 path uses four accumulator lanes and differs by
  /// ordinary dot-product rounding (~1e-15 relative).
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// Returns A^T.
  [[nodiscard]] Matrix transposed() const;

  /// Returns A * B. Requires cols() == B.rows(). Runs on the dispatched
  /// k-tiled SIMD kernel; results are bit-identical to the historical
  /// naive ikj loop at every dispatch level (per output element the
  /// contributions still accumulate in ascending k, each product rounded
  /// before its add, zero A entries skipped) — only the cache behavior
  /// and instruction mix change.
  [[nodiscard]] Matrix matmul(const Matrix& other) const;

  /// Sum of diagonal entries. Requires a square matrix.
  [[nodiscard]] double trace() const;

  /// Frobenius norm squared: sum of squares of all entries. For a symmetric
  /// matrix this equals trace(A^2), which the chi-square moment matching of
  /// eq. (30) needs.
  [[nodiscard]] double frobenius_squared() const;

  /// Maximum absolute asymmetry |A(i,j) - A(j,i)|; 0 for exactly symmetric.
  [[nodiscard]] double max_asymmetry() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Symmetric rank-k product G = A A^T (rows x rows). Each entry is the
/// ascending-index dot product of two rows of A, so replacing a hand-rolled
/// triple loop with this helper is bit-identical. Only the upper triangle
/// is computed; the lower is mirrored.
Matrix gram_aat(const Matrix& a);

/// Dot product of two equally sized vectors.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm(const Vector& a);

}  // namespace obd::la
