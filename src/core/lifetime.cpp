#include "core/lifetime.hpp"

#include <cmath>

#include "common/error.hpp"
#include "numeric/roots.hpp"

namespace obd::core {

double lifetime_at_failure(const std::function<double(double)>& failure,
                           double target, double seed_lo, double seed_hi) {
  require(target > 0.0 && target < 1.0,
          "lifetime_at_failure: target must be in (0, 1)");
  require(seed_lo > 0.0 && seed_hi > seed_lo,
          "lifetime_at_failure: invalid seed interval");
  const auto in_log_time = [&](double s) { return failure(std::exp(s)) - target; };
  const double s = num::brent_auto_bracket(in_log_time, std::log(seed_lo),
                                           std::log(seed_hi), 1e-10);
  return std::exp(s);
}

std::vector<CurvePoint> failure_curve(
    const std::function<double(double)>& failure, double t_lo, double t_hi,
    std::size_t points) {
  require(t_lo > 0.0 && t_hi > t_lo, "failure_curve: invalid time range");
  require(points >= 2, "failure_curve: need at least two points");
  std::vector<CurvePoint> curve;
  curve.reserve(points);
  const double step =
      std::log(t_hi / t_lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t_lo * std::exp(step * static_cast<double>(i));
    curve.push_back({t, failure(t)});
  }
  return curve;
}

std::vector<HazardPoint> hazard_curve(
    const std::function<double(double)>& failure, double t_lo, double t_hi,
    std::size_t points, double log_step) {
  require(t_lo > 0.0 && t_hi > t_lo, "hazard_curve: invalid time range");
  require(points >= 2, "hazard_curve: need at least two points");
  require(log_step > 0.0, "hazard_curve: log step must be positive");
  std::vector<HazardPoint> curve;
  curve.reserve(points);
  const double step =
      std::log(t_hi / t_lo) / static_cast<double>(points - 1);
  const double eh = std::exp(log_step);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t_lo * std::exp(step * static_cast<double>(i));
    const double f_hi = failure(t * eh);
    const double f_lo = failure(t / eh);
    const double f_mid = failure(t);
    const double dfdt = (f_hi - f_lo) / (t * (eh - 1.0 / eh));
    const double survivor = std::max(1e-300, 1.0 - f_mid);
    curve.push_back({t, std::max(0.0, dfdt) / survivor});
  }
  return curve;
}

}  // namespace obd::core
