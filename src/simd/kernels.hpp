// Kernel table for the runtime-dispatched SIMD layer.
//
// Each entry is one of the straight-line inner loops that dominate
// end-to-end runtime now that the algorithmic fast paths are in place
// (see docs/PERFORMANCE.md, "SIMD kernels"). Three implementations exist:
// a scalar reference (`kernels_scalar.cpp`, compiled at the baseline ISA,
// bit-identical to the loops it replaced), an AVX2+FMA variant
// (`kernels_avx2.cpp`, compiled per-file with -mavx2 -mfma), and an
// AVX-512F/DQ variant (`kernels_avx512.cpp`, compiled per-file with
// -mavx512f -mavx512dq). Dispatch between them is a process-wide runtime
// decision — see dispatch.hpp.
//
// Exactness contracts (what callers may rely on, per kernel):
//   fill_bin_factors  scalar: bit-identical to the historical loop.
//                     avx2/avx512: same exact-exp re-anchor every
//                     kReanchorInterval bins; between anchors the vector
//                     recurrence steps by ratio^8 per chain, so values
//                     drift from the scalar recurrence by a bounded ~1e-13
//                     relative amount (fewer roundings than scalar, not
//                     more).
//   dot_counts        bit-identical across ALL levels: every variant uses
//                     the same four fixed accumulator lanes (lane l sums
//                     elements 4j+l in ascending j, product rounded before
//                     the add — no FMA), the same scalar tail into lane 0,
//                     and the same final combine (a0 + a2) + (a1 + a3).
//                     The AVX-512 variant folds the high 256-bit half of
//                     each 512-bit product into the same four lanes
//                     low-half-first, preserving ascending-j order per
//                     lane.
//   normal_cdf_batch  scalar: bit-identical to stats::normal_cdf per
//                     element. avx2/avx512: polynomial erfc (identical
//                     coefficient sets and operation sequence), relative
//                     error <= ~1e-12 wherever |result| > 1e-300; exactly
//                     0/1 outside |z| ~ 39.6 (the scalar path underflows
//                     over the same region).
//   matmul            bit-identical across ALL levels AND to the
//                     historical naive ikj loop: per output element the
//                     contributions accumulate in ascending k with the
//                     same round(product)-then-add sequence and the same
//                     a == 0.0 skip; k-tiling and column vectorization
//                     (4-wide or 8-wide) only reorder independent
//                     elements.
//   gram_aat          bit-identical across ALL levels and to the
//                     historical triangle loop (same ascending-index
//                     single-chain dot per entry, mirrored).
//   matvec            scalar: bit-identical to the historical loop (one
//                     accumulator per row). avx2/avx512: four accumulator
//                     lanes per row (avx512 folds its high half into the
//                     same four lanes) — differs from scalar by normal
//                     dot-product rounding (~1e-15 relative); no caller
//                     pins matvec bits.
//   clenshaw_batch    bit-identical across ALL levels: every pencil runs
//                     the identical per-step operation sequence
//                     s = round((2u)*b1); q = round(s - b2);
//                     b = round(c_k + q) for k = n-1 .. 1, then
//                     out = c_0 + round(round(u*b1) - b2) — separate
//                     mul/sub/add, never FMA. The vector variants map
//                     SIMD lanes to independent pencils (4-wide / 8-wide)
//                     and the scalar tail repeats the same sequence, so
//                     lane width never changes any rounding. The
//                     surrogate layer's certified envelopes rely on this.
#pragma once

#include <cstddef>
#include <cstdint>

namespace obd::simd {

/// Accumulator lane count of dot_counts. Callers that align ranges to the
/// accumulator structure (e.g. the Monte Carlo nonzero-range trimming)
/// must use this width so trimming stays bit-neutral.
inline constexpr std::size_t kDotLanes = 4;

/// Bins between exact-exp re-anchors in fill_bin_factors. Part of the
/// numerical contract shared with core::detail::kReanchorInterval.
inline constexpr std::size_t kReanchorInterval = 64;

/// One dispatch level's implementations. All pointers are always valid.
struct KernelTable {
  /// out[k] = exp(gb * (x_lo + (k + 0.5) * step)) for k in [0, bins),
  /// via an incremental recurrence re-anchored by an exact exp every
  /// kReanchorInterval bins. `out` must hold `bins` doubles.
  void (*fill_bin_factors)(double gb, double x_lo, double step,
                           std::size_t bins, double* out);
  /// Dot product of uint32 counts against double factors with the fixed
  /// four-lane accumulator structure (see contract above).
  double (*dot_counts)(const std::uint32_t* counts, const double* factors,
                       std::size_t n);
  /// out[i] = standard normal CDF of z[i]. In-place (out == z) is allowed.
  void (*normal_cdf_batch)(const double* z, std::size_t n, double* out);
  /// out(m x n) = a(m x k) * b(k x n), row-major, out pre-zeroed by the
  /// caller. Skips a(r, kk) == 0.0 exactly like the historical loop.
  void (*matmul)(const double* a, const double* b, double* out,
                 std::size_t m, std::size_t k, std::size_t n);
  /// y(rows) = a(rows x cols) * x(cols), row-major.
  void (*matvec)(const double* a, const double* x, double* y,
                 std::size_t rows, std::size_t cols);
  /// g(n x n) = a(n x k) * a(n x k)^T, row-major, symmetric (upper
  /// triangle computed, lower mirrored bitwise).
  void (*gram_aat)(const double* a, double* g, std::size_t n,
                   std::size_t k);
  /// Clenshaw evaluation of m interleaved Chebyshev pencils at one point
  /// u in [-1, 1]: out[p] = sum_{k < n} coeffs[k * m + p] * T_k(u) for
  /// each pencil p in [0, m). n == 0 zero-fills `out`; in-place
  /// (out == coeffs) is NOT allowed. Bit-identical across all levels
  /// (see contract above).
  void (*clenshaw_batch)(const double* coeffs, std::size_t n, std::size_t m,
                         double u, double* out);
};

/// The table for the active dispatch level (lazily resolved from
/// OBDREL_SIMD on first use — see dispatch.hpp).
const KernelTable& kernels();

namespace detail {
extern const KernelTable kScalarKernels;
// The vector tables alias kScalarKernels when their translation unit is
// built without the matching ISA, so taking either symbol is always safe;
// dispatch never selects a level the CPU cannot run.
extern const KernelTable kAvx2Kernels;
extern const KernelTable kAvx512Kernels;
}  // namespace detail

}  // namespace obd::simd
