#include "core/degradation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/distributions.hpp"

namespace obd::core {
namespace {

// Pre-SBD baseline: direct-tunneling leakage with a slow SILC drift,
// log-linear in time.
double baseline(const DegradationParams& p, double t) {
  const double decades = std::log10(std::max(t, 1.0));
  return p.initial_leakage * (1.0 + p.pre_sbd_drift_per_decade * decades);
}

}  // namespace

double leakage_at(const DegradationParams& p, double t, double t_sbd) {
  require(t >= 0.0, "leakage_at: t must be non-negative");
  require(t_sbd > 0.0, "leakage_at: t_sbd must be positive");
  if (t < t_sbd) return baseline(p, t);
  const double i_sbd = baseline(p, t_sbd) * p.sbd_jump;
  const double tau = p.post_sbd_tau_fraction * t_sbd;
  const double grown =
      i_sbd * std::pow(1.0 + (t - t_sbd) / tau, p.post_sbd_exponent);
  if (grown >= p.hbd_current) return p.compliance_current;
  return grown;
}

double hbd_time(const DegradationParams& p, double t_sbd) {
  const double i_sbd = baseline(p, t_sbd) * p.sbd_jump;
  require(i_sbd > 0.0, "hbd_time: invalid SBD current");
  if (i_sbd >= p.hbd_current) return t_sbd;
  const double tau = p.post_sbd_tau_fraction * t_sbd;
  const double growth = std::pow(p.hbd_current / i_sbd,
                                 1.0 / p.post_sbd_exponent);
  return t_sbd + tau * (growth - 1.0);
}

LeakageTrace simulate_degradation(const DegradationParams& params,
                                  stats::Rng& rng, double t_start,
                                  double t_end, std::size_t points) {
  require(t_start > 0.0 && t_end > t_start,
          "simulate_degradation: invalid time range");
  require(points >= 2, "simulate_degradation: need at least two points");

  const stats::Weibull sbd(params.alpha_stress, params.beta_stress);
  LeakageTrace trace;
  trace.t_sbd = sbd.sample(rng);
  trace.t_hbd = hbd_time(params, trace.t_sbd);

  trace.time_s.reserve(points);
  trace.leakage_a.reserve(points);
  const double step =
      std::log(t_end / t_start) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t_start * std::exp(step * static_cast<double>(i));
    trace.time_s.push_back(t);
    trace.leakage_a.push_back(leakage_at(params, t, trace.t_sbd));
  }
  return trace;
}

}  // namespace obd::core
