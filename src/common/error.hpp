// Error handling primitives shared by all obdrel modules.
//
// The library reports contract violations and unrecoverable numerical
// conditions by throwing obd::Error (derived from std::runtime_error), so
// callers can distinguish library failures from standard-library ones.
// Every Error carries an ErrorCode so frontends (and retry logic) can react
// to the *kind* of failure without string-matching the message; the CLI
// maps the codes 1:1 onto process exit codes (see docs/ROBUSTNESS.md).
#pragma once

#include <stdexcept>
#include <string>

namespace obd {

/// Failure taxonomy. The numeric values are part of the CLI contract: the
/// obdrel frontend exits with static_cast<int>(code).
enum class ErrorCode {
  kInternal = 1,        ///< unexpected condition inside the library
  kConfig = 2,          ///< configuration / usage errors (bad key, bad CLI)
  kIo = 3,              ///< file open/read/write failures
  kInvalidInput = 4,    ///< malformed or out-of-range input data
  kNonconvergence = 5,  ///< a numerical iteration failed to converge
  kDegraded = 6,        ///< degraded result escalated under strict mode
};

/// Short stable name for an ErrorCode ("io", "nonconvergence", ...).
inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kConfig: return "config";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInvalidInput: return "invalid-input";
    case ErrorCode::kNonconvergence: return "nonconvergence";
    case ErrorCode::kDegraded: return "degraded";
  }
  return "unknown";
}

/// Exception type thrown by all obdrel components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kInvalidInput)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Throws obd::Error with `message` when `condition` is false.
///
/// Used to validate public-API preconditions (sizes, ranges, positivity).
/// Unlike assert(), this is active in all build types: reliability analyses
/// run long, and silently corrupt inputs are far costlier than the check.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

/// Typed variant: attaches an explicit ErrorCode to the failure.
inline void require(bool condition, ErrorCode code,
                    const std::string& message) {
  if (!condition) throw Error(message, code);
}

}  // namespace obd
