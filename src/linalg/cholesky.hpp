// Cholesky factorization of symmetric positive-(semi)definite matrices.
//
// Used by the Monte Carlo reference flow to draw correlated grid samples
// directly from the covariance matrix (an alternative to the PCA route), and
// to validate that constructed covariances are valid (PSD).
#pragma once

#include "linalg/matrix.hpp"

namespace obd::la {

/// Computes the lower-triangular L with A = L L^T.
///
/// `jitter` is added to the diagonal before factorization to absorb the
/// slight rank deficiency of exponentially decaying covariance matrices.
/// Throws obd::Error if the (jittered) matrix is not positive definite.
Matrix cholesky_lower(const Matrix& a, double jitter = 0.0);

/// Solves A x = b given the Cholesky factor L of A (forward + back
/// substitution).
Vector cholesky_solve(const Matrix& lower, const Vector& b);

/// Fault-tolerant SPD factorization with bounded retry.
///
/// Tries cholesky_lower first; when the matrix is numerically
/// non-positive-definite (near-singular correlation matrices, roundoff in
/// assembled conductance systems), retries with an escalating diagonal
/// ridge proportional to the mean diagonal, and finally falls back to an
/// eigendecomposition with negative eigenvalues clamped to zero. Each
/// recovery is reported to obd::diagnostics() under "linalg.cholesky";
/// `context` names the caller in the diagnostic. Throws
/// Error(kNonconvergence) only when every strategy fails.
Matrix cholesky_lower_robust(const Matrix& a, const std::string& context,
                             double jitter = 0.0);

}  // namespace obd::la
