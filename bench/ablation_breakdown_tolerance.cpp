// Ablation: failure criterion — first SBD (the paper's criterion) vs
// tolerating k-1 breakdowns (the refs [28][30] successive-breakdown
// extension). Reports the ppm-lifetime multiplier a breakdown-tolerant
// design earns, across designs of different scale.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/table.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;
  const std::size_t mc_chips = bench::env_size("OBDREL_MC_CHIPS", 400);

  std::printf("Failure-criterion ablation: k-th-breakdown 10ppm lifetime\n"
              "relative to first-breakdown (MC chips = %zu).\n\n",
              mc_chips);

  const core::AnalyticReliabilityModel model;
  TextTable t({"ckt.", "#Device", "t_k1 [y]", "k=2 gain", "k=3 gain",
               "k=4 gain"});
  for (int ci : {1, 3, 5}) {
    const chip::Design design = chip::make_benchmark(ci);
    const auto profile = thermal::power_thermal_fixed_point(
        design, power::PowerParams{}, {.resolution = 32}, 2);
    const auto problem = core::ReliabilityProblem::build(
        design, var::VariationBudget{}, model, profile.block_temps_c, 1.2);
    const core::MonteCarloAnalyzer mc(problem, {.chip_samples = mc_chips});
    const double t1 = mc.kth_lifetime_at(core::kTenFaultsPerMillion, 1);
    std::vector<std::string> row{design.name,
                                 fmt_count(design.total_devices()),
                                 fmt(t1 / bench::kYear, 2)};
    for (std::size_t k = 2; k <= 4; ++k) {
      row.push_back(
          fmt(mc.kth_lifetime_at(core::kTenFaultsPerMillion, k) / t1, 2) +
          "x");
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: a huge multiplier from k=1 to k=2 — at ppm levels\n"
      "P(N>=2) ~ H^2/2, so the tolerant criterion reaches the target at\n"
      "H ~ sqrt(2e-5) instead of 1e-5, i.e. t2/t1 ~ (sqrt(2e-5)/1e-5)^(1/beta)\n"
      "~ 60-70x for beta ~ 1.4 — with diminishing extra gain for each\n"
      "further k. The multiplier is nearly design-independent (it is set by\n"
      "the target quantile and the Weibull slope, not the area), drifting\n"
      "up slightly for hotter designs whose flatter slopes (smaller b(T))\n"
      "stretch the tail.\n");
  return 0;
}
