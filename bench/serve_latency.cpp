// Serving-path latency and throughput.
//
// Drives the `obdrel serve` query engine in-process (no socket: the bench
// measures the answer path, not loopback I/O) over a small fingerprint
// population:
//
//   1. cold builds — one table build per fingerprint (the price a cache
//      miss pays),
//   2. steady-state latency — single-query round trips through
//      parse -> cache hit -> batched table evaluation, reported as
//      p50/p99 microseconds,
//   3. throughput — batched evaluation at the daemon's default batch
//      size, reported as queries/s,
//   4. cache effectiveness — the hit rate over the steady-state phase.
//      The acceptance gate is >= 90%: with a warmed cache and a
//      fingerprint population that fits the byte budget, the serving path
//      must be answering from memory, not rebuilding tables.
//
// Results go to BENCH_serve.json in the working directory (or
// $OBDREL_CSV_DIR). Scaling knobs: OBDREL_SERVE_QUERIES (default 2000),
// OBDREL_SERVE_FINGERPRINTS (default 4), OBDREL_SERVE_TABLE_N
// (default 48, the gamma-grid side of each cached table).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "serve/engine.hpp"

namespace {

obd::serve::PendingQuery make_query(const std::string& id, double t,
                                    std::size_t fingerprint_k) {
  std::string line = "id=" + id + " t=" + std::to_string(t);
  if (fingerprint_k > 0)
    line += " set.ambient_c=" +
            std::to_string(45.0 + 5.0 * static_cast<double>(fingerprint_k));
  obd::serve::PendingQuery q;
  q.request = obd::serve::parse_request(line);
  q.arrival = std::chrono::steady_clock::now();
  return q;
}

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(i, xs.size() - 1)];
}

}  // namespace

int main() {
  using namespace obd;
  const std::size_t queries = bench::env_size("OBDREL_SERVE_QUERIES", 2000);
  const std::size_t fps = bench::env_size("OBDREL_SERVE_FINGERPRINTS", 4);
  const std::size_t table_n = bench::env_size("OBDREL_SERVE_TABLE_N", 48);

  Config cfg;
  cfg.set("design", "c1");
  cfg.set("grid", "8");
  cfg.set("serve_n_gamma", std::to_string(table_n));
  cfg.set("serve_n_b", std::to_string(table_n / 2));

  serve::EngineOptions eo;
  eo.n_gamma = table_n;
  eo.n_b = table_n / 2;
  serve::QueryEngine engine(cfg, eo);

  const double ts[] = {1.0 * bench::kYear,  2.0 * bench::kYear,
                       5.0 * bench::kYear,  7.0 * bench::kYear,
                       10.0 * bench::kYear, 15.0 * bench::kYear,
                       20.0 * bench::kYear, 30.0 * bench::kYear};
  const std::size_t n_ts = sizeof ts / sizeof ts[0];

  std::printf("Serve latency bench: %zu queries over %zu fingerprints, "
              "%zux%zu tables.\n\n",
              queries, fps, table_n, table_n / 2);

  // 1. Cold builds: first touch of each fingerprint fills its tables.
  Stopwatch cold_sw;
  for (std::size_t k = 0; k < fps; ++k)
    (void)engine.evaluate({make_query("warm", ts[0], k)});
  const double cold_s = cold_sw.seconds();
  std::printf("cold builds:    %8.2f s  (%.3f s per fingerprint)\n", cold_s,
              cold_s / static_cast<double>(fps));

  // 2. Steady-state single-query latency percentiles.
  std::vector<double> lat_us;
  lat_us.reserve(queries);
  Stopwatch run_sw;
  for (std::size_t i = 0; i < queries; ++i) {
    const auto q =
        make_query("q" + std::to_string(i), ts[i % n_ts], i % fps);
    Stopwatch one;
    const auto replies = engine.evaluate({q});
    lat_us.push_back(one.seconds() * 1.0e6);
    if (replies.size() != 1 ||
        replies[0].find(" ok=1 ") == std::string::npos) {
      std::fprintf(stderr, "unexpected reply: %s\n",
                   replies.empty() ? "<none>" : replies[0].c_str());
      return 1;
    }
  }
  const double single_s = run_sw.seconds();
  const double p50 = percentile(lat_us, 0.50);
  const double p99 = percentile(lat_us, 0.99);
  std::printf("hit latency:    p50 %.1f us, p99 %.1f us\n", p50, p99);

  // 3. Batched throughput at the daemon's default batch size.
  const std::size_t batch_size = 64;
  std::vector<serve::PendingQuery> batch;
  Stopwatch batch_sw;
  std::size_t batched = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    batch.push_back(
        make_query("b" + std::to_string(i), ts[i % n_ts], i % fps));
    if (batch.size() == batch_size || i + 1 == queries) {
      batched += engine.evaluate(batch).size();
      batch.clear();
    }
  }
  const double batch_s = batch_sw.seconds();
  const double qps = static_cast<double>(batched) / batch_s;
  std::printf("throughput:     %.0f queries/s batched "
              "(%.0f single-query)\n",
              qps, static_cast<double>(queries) / single_s);

  // 4. Hit rate over the whole run (the warmup misses are the only ones
  // a healthy cache should ever take).
  const auto& st = engine.cache().stats();
  const double total =
      static_cast<double>(st.hits + st.disk_hits + st.misses);
  const double hit_rate =
      total > 0.0
          ? static_cast<double>(st.hits + st.disk_hits) / total
          : 0.0;
  const bool hit_ok = hit_rate >= 0.90;
  std::printf("cache hit rate: %.1f%% (gate 90%%)%s\n", 100.0 * hit_rate,
              hit_ok ? "" : "  FAILED");

  const std::string dir = csv_output_dir();
  const std::string path =
      (dir.empty() ? std::string{} : dir + "/") + "BENCH_serve.json";
  std::ofstream out(path);
  out << "{\n  \"queries\": " << queries << ",\n"
      << "  \"fingerprints\": " << fps << ",\n"
      << "  \"table_n_gamma\": " << table_n << ",\n"
      << "  \"cold_build_seconds\": " << cold_s << ",\n"
      << "  \"p50_us\": " << p50 << ",\n"
      << "  \"p99_us\": " << p99 << ",\n"
      << "  \"qps_batched\": " << qps << ",\n"
      << "  \"qps_single\": " << static_cast<double>(queries) / single_s
      << ",\n  \"cache_hits\": " << st.hits << ",\n"
      << "  \"cache_misses\": " << st.misses << ",\n"
      << "  \"hit_rate\": " << hit_rate << ",\n"
      << "  \"pass\": " << (hit_ok ? "true" : "false") << "\n}\n";
  std::printf("(wrote %s)\n", path.c_str());
  return hit_ok ? 0 : 1;
}
