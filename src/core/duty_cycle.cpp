#include "core/duty_cycle.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::core {

WorkloadPhase make_phase(const std::string& name, double fraction,
                         const DeviceReliabilityModel& model,
                         const std::vector<double>& block_temps_c,
                         double vdd) {
  WorkloadPhase phase;
  phase.name = name;
  phase.fraction = fraction;
  phase.alphas.reserve(block_temps_c.size());
  phase.bs.reserve(block_temps_c.size());
  for (double t : block_temps_c) {
    phase.alphas.push_back(model.alpha(t, vdd));
    phase.bs.push_back(model.b(t, vdd));
  }
  return phase;
}

DutyCycleAnalyzer::DutyCycleAnalyzer(const ReliabilityProblem& problem,
                                     std::vector<WorkloadPhase> phases,
                                     const AnalyticOptions& options)
    : problem_(&problem), phases_(std::move(phases)) {
  require(!phases_.empty(), "DutyCycleAnalyzer: need at least one phase");
  double total = 0.0;
  for (const auto& p : phases_) {
    require(p.fraction >= 0.0, "DutyCycleAnalyzer: negative phase fraction");
    require(p.alphas.size() == problem.blocks().size() &&
                p.bs.size() == problem.blocks().size(),
            "DutyCycleAnalyzer: phase '" + p.name +
                "' parameter count must match block count");
    for (std::size_t j = 0; j < p.alphas.size(); ++j)
      require(p.alphas[j] > 0.0 && p.bs[j] > 0.0,
              "DutyCycleAnalyzer: non-positive Weibull parameters");
    total += p.fraction;
  }
  require(std::fabs(total - 1.0) < 1e-9,
          "DutyCycleAnalyzer: phase fractions must sum to 1");

  // The (u, v) nodes depend only on the process model — reuse st_fast's.
  nodes_ = AnalyticAnalyzer(problem, options).nodes();

  // Per-block reference phase (largest fraction) and the equivalent-age
  // scale sum_p f_p AF_p (cumulative-exposure model).
  const std::size_t n_blocks = problem.blocks().size();
  ref_phase_.resize(n_blocks);
  age_scale_.resize(n_blocks);
  std::size_t ref = 0;
  for (std::size_t p = 1; p < phases_.size(); ++p)
    if (phases_[p].fraction > phases_[ref].fraction) ref = p;
  for (std::size_t j = 0; j < n_blocks; ++j) {
    ref_phase_[j] = ref;
    double scale = 0.0;
    for (const auto& phase : phases_)
      scale += phase.fraction * phases_[ref].alphas[j] / phase.alphas[j];
    age_scale_[j] = scale;
  }
}

double DutyCycleAnalyzer::failure_probability(double t) const {
  require(t > 0.0, "DutyCycleAnalyzer: t must be positive");
  const auto& blocks = problem_->blocks();
  const auto block_failure = [&](std::size_t j) {
    const double area = blocks[j].area;
    const auto& ref = phases_[ref_phase_[j]];
    const double t_eq = t * age_scale_[j];
    double f = 0.0;
    for (const auto& node : nodes_[j]) {
      const double exponent =
          area * g_closed_form(t_eq, ref.alphas[j], ref.bs[j], node.u,
                               node.v);
      f += node.weight * (-std::expm1(-exponent));
    }
    return std::clamp(f, 0.0, 1.0);
  };
  const mech::MechanismStack& stack = problem_->mechanisms();
  if (!stack.trivial()) {
    // Phases modulate the oxide (alpha, b) only; the aging mechanisms see
    // the actual elapsed time at each block's default operating point —
    // the same competing-risks fold as the direct evaluators.
    thread_local std::vector<double> oxide_f;
    oxide_f.resize(blocks.size());
    for (std::size_t j = 0; j < blocks.size(); ++j)
      oxide_f[j] = block_failure(j);
    return stack.compose(oxide_f.data(), t);
  }
  // Survival-product weakest-link composition across blocks, matching
  // failure_from_nodes (the first-order block-failure sum overestimates
  // F(t) at high failure levels).
  double log_survival = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j)
    log_survival += std::log1p(-block_failure(j));
  return std::clamp(-std::expm1(log_survival), 0.0, 1.0);
}

double DutyCycleAnalyzer::lifetime_at(double target) const {
  return lifetime_at_failure(
      [this](double t) { return failure_probability(t); }, target);
}

}  // namespace obd::core
