#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace obd::stats {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPositiveNeverZero) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.uniform_positive(), 0.0);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(21);
  RunningStats s;
  double m3 = 0.0;
  double m4 = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s.add(x);
    m3 += x * x * x;
    m4 += x * x * x * x;
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.variance(), 1.0, 0.02);
  EXPECT_NEAR(m3 / n, 0.0, 0.03);   // skewness
  EXPECT_NEAR(m4 / n, 3.0, 0.08);   // kurtosis
}

TEST(Rng, NormalWithMeanAndSigma) {
  Rng rng(33);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(2.2, 0.03));
  EXPECT_NEAR(s.mean(), 2.2, 0.001);
  EXPECT_NEAR(s.stddev(), 0.03, 0.001);
}

TEST(Rng, ExponentialMeanIsOne) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential());
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  int counts[5] = {0, 0, 0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 100);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng a(55);
  Rng b = a.split();
  RunningStats corr;
  double sum_ab = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double xa = a.uniform() - 0.5;
    const double xb = b.uniform() - 0.5;
    sum_ab += xa * xb;
  }
  EXPECT_NEAR(sum_ab / n, 0.0, 0.002);
}

TEST(Rng, StreamIsDeterministic) {
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDifferAcrossIndicesAndSeeds) {
  Rng a = Rng::stream(42, 0);
  Rng b = Rng::stream(42, 1);
  Rng c = Rng::stream(43, 0);
  int equal_ab = 0;
  int equal_ac = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t xa = a();
    if (xa == b()) ++equal_ab;
    if (xa == c()) ++equal_ac;
  }
  EXPECT_LT(equal_ab, 3);
  EXPECT_LT(equal_ac, 3);
}

TEST(Rng, AdjacentStreamsArePairwiseDecorrelated) {
  // Regression for the affine-derived seeding (seed + GOLDEN * (s + 1)):
  // consecutive splitmix64 states made chip s+1's xoshiro state words
  // overlap chip s's, correlating "independent" per-chip streams. The
  // splitmix-mixed Rng::stream derivation must show no pairwise sample
  // correlation between any nearby stream indices.
  const int n = 50000;
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (std::uint64_t d = 1; d <= 4; ++d) {
      Rng a = Rng::stream(2026, s);
      Rng b = Rng::stream(2026, s + d);
      double sum_ab = 0.0;
      for (int i = 0; i < n; ++i)
        sum_ab += (a.uniform() - 0.5) * (b.uniform() - 0.5);
      // Var of the product mean is (1/12)^2 / n; 4 sigma ~ 0.0015.
      EXPECT_NEAR(sum_ab / n, 0.0, 0.0015)
          << "streams " << s << " and " << s + d;
    }
  }
}

TEST(RunningStats, WelfordMatchesBatch) {
  Rng rng(77);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-8);
  EXPECT_EQ(s.count(), 1000u);
}

TEST(Descriptive, QuantileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Descriptive, EmpiricalCdf) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empirical_cdf(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empirical_cdf(xs, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(empirical_cdf(xs, 9.0), 1.0);
}

}  // namespace
}  // namespace obd::stats
