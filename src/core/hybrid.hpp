// Hybrid analytical/table look-up method (Section IV-E of the paper).
//
// The double integral of eq. (31) depends on t, alpha_j, and b_j only
// through the pair (ln(t/alpha_j), b_j). For a fixed design, each block's
// integral is precomputed once on an n_alpha x n_b grid over those indices
// (100 x 100 in the paper); any later query — any time stamp, any
// temperature/voltage profile, i.e., any (alpha_j, b_j) — is answered by
// bilinear interpolation. This gives the further 2 orders of magnitude
// speedup of Table III and enables embedding "into a dynamic system for
// reliability monitoring that usually requires very fast response".
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "core/analytic.hpp"
#include "numeric/interp.hpp"

namespace obd::core {

struct HybridOptions {
  std::size_t n_gamma = 100;  ///< table indices along ln(t/alpha)
  std::size_t n_b = 100;      ///< table indices along b
  double gamma_lo = -60.0;    ///< ln(t/alpha) lower edge
  double gamma_hi = -2.0;     ///< ln(t/alpha) upper edge
  double b_lo = 0.30;         ///< b lower edge [1/nm]
  double b_hi = 1.00;         ///< b upper edge [1/nm]
  /// Interpolate the tabulated block-failure values in log space (more
  /// accurate; the failure contribution spans many decades across the gamma
  /// range). Set false for the paper-literal bilinear-on-values scheme.
  bool log_space = true;
  /// Quadrature used to fill the tables (same machinery as st_fast).
  AnalyticOptions integration{};
};

/// Precomputed per-design lookup evaluator.
class HybridEvaluator {
 public:
  /// Builds one lookup table per block. Construction cost is
  /// O(N * n_gamma * n_b * l0^2); queries are O(N).
  explicit HybridEvaluator(const ReliabilityProblem& problem,
                           const HybridOptions& options = {});

  /// Failure probability at t with the problem's own (alpha_j, b_j).
  [[nodiscard]] double failure_probability(double t) const;

  /// Batched F(t) sweep over `ts` — the table-lookup counterpart of the
  /// MonteCarloAnalyzer batched-sweep API, and the entry point the serving
  /// layer coalesces same-fingerprint queries onto. Each point shares the
  /// single-point evaluation kernel, so the batch is bit-identical to
  /// calling failure_probability per point.
  [[nodiscard]] std::vector<double> failure_probabilities(
      std::span<const double> ts) const;

  [[nodiscard]] double reliability(double t) const {
    return 1.0 - failure_probability(t);
  }

  /// Failure probability at t under *different* per-block reliability
  /// parameters (e.g., a new temperature/voltage profile) — the hybrid
  /// method's reason to exist. Vectors align with problem().blocks().
  [[nodiscard]] double failure_probability_with(
      double t, const std::vector<double>& alphas,
      const std::vector<double>& bs) const;

  /// Batched counterpart of failure_probability_with (bit-identical to the
  /// per-point calls, one parameter validation for the whole sweep).
  [[nodiscard]] std::vector<double> failure_probabilities_with(
      std::span<const double> ts, const std::vector<double>& alphas,
      const std::vector<double>& bs) const;

  [[nodiscard]] double lifetime_at(double target) const;

  [[nodiscard]] const ReliabilityProblem& problem() const { return *problem_; }
  [[nodiscard]] const HybridOptions& options() const { return options_; }

  /// Serializes the precomputed tables (text, versioned). Together with
  /// load() this is the Section IV-E deployment story: compute the tables
  /// once at sign-off, ship them to the "dynamic system for reliability
  /// monitoring".
  void save(std::ostream& out) const;

  /// Restores an evaluator from a stream produced by save(). `problem`
  /// must be the same design (block count and areas are checked).
  static HybridEvaluator load(std::istream& in,
                              const ReliabilityProblem& problem);

  /// Single-block expected failure contribution at table indices
  /// (gamma = ln(t/alpha_j), b_j) — the raw eq. (31) value. Exposed for
  /// consumers that do their own per-block bookkeeping, e.g. the dynamic
  /// reliability manager's effective-age recursion.
  [[nodiscard]] double block_failure(std::size_t j, double gamma,
                                     double b) const {
    return block_failure_lookup(j, gamma, b);
  }

 private:
  /// Internal: build from deserialized state.
  HybridEvaluator(const ReliabilityProblem& problem, HybridOptions options,
                  std::vector<num::LookupTable2D> tables);
  [[nodiscard]] double block_failure_lookup(std::size_t j, double gamma,
                                            double b) const;

  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  HybridOptions options_;
  std::vector<num::LookupTable2D> tables_;  // one per block
};

}  // namespace obd::core
