// Workload generation for reliability-management studies.
//
// The DRM controller consumes one activity scale per control interval.
// This header provides reproducible synthetic workloads (diurnal swing,
// random bursts, idle gaps) and a bridge from HotSpot .ptrace power traces
// to activity scales, so measured traces drive the same loop.
#pragma once

#include <vector>

#include "chip/design.hpp"
#include "power/power.hpp"
#include "stats/rng.hpp"

namespace obd::drm {

struct WorkloadOptions {
  double base = 0.5;            ///< mean activity scale
  double diurnal_amplitude = 0.25;  ///< sinusoidal swing around the base
  double period_steps = 24.0;   ///< steps per diurnal period
  double burst_probability = 0.08;  ///< chance a step is a full-load burst
  double burst_level = 1.0;
  double idle_probability = 0.10;   ///< chance a step is near-idle
  double idle_level = 0.05;
  double noise = 0.08;          ///< Gaussian jitter sigma
};

/// Generates `steps` activity scales in [0, 1].
std::vector<double> synthetic_workload(std::size_t steps,
                                       const WorkloadOptions& options,
                                       stats::Rng& rng);

/// Derives activity scales from a power trace: each sample's total power
/// relative to the design's full-activity power at the same operating
/// point (clamped to [0, 1]). A pragmatic bridge — leakage is folded into
/// the ratio — adequate for driving the DRM loop from measured traces.
std::vector<double> workload_from_power_trace(
    const chip::Design& design, const std::vector<power::PowerMap>& trace,
    const power::PowerParams& params = {});

}  // namespace obd::drm
