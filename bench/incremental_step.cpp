// Incremental-recomputation gate: dirty-block trace replay against the
// from-scratch sweep.
//
// The serving/DRM pattern this measures: a long trace of small state
// deltas (a thermal step moves a few hot blocks, a serve override
// retargets one knob) with the chip failure probability re-queried after
// every delta. The from-scratch path recomputes all N per-block terms per
// step; the incremental path (core/chip_state + core/incremental) refreshes
// only the k dirty rows and re-reduces. With k/N = 5% the arithmetic says
// ~N/k; the gate demands >= 3x end to end.
//
// Two laps, both bit-gated:
//
//   1. hybrid replay — HybridEvaluator::failure_probability_with per step
//      vs IncrementalEvaluator::evaluate on a ChipState. Every step's
//      incremental result must be bit-identical to the from-scratch call
//      (same ops, fixed reduction order — see core/incremental.hpp).
//      The >= 3x speedup gate rides on this lap (checked by CI via jq on
//      the JSON; the in-bench exit code gates bit-identity).
//   2. Monte Carlo context reuse — failure_probabilities_with with its
//      differentially-refreshed factor table vs a cold analyzer evaluating
//      the final trace state. Informational speedup (the chip sweep is
//      dirty-independent, so gains are bounded by the refresh share); the
//      bit gate is the point.
//
// Results go to BENCH_incremental.json (in $OBDREL_CSV_DIR when set).
// Knobs: OBDREL_INC_BLOCKS (500), OBDREL_INC_STEPS (2000),
// OBDREL_INC_DIRTY_PCT (5), OBDREL_INC_LAPS (3), OBDREL_INC_MC_CHIPS (32),
// OBDREL_INC_MC_STEPS (40).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "core/chip_state.hpp"
#include "core/device_model.hpp"
#include "core/hybrid.hpp"
#include "core/incremental.hpp"
#include "core/montecarlo.hpp"
#include "core/problem.hpp"
#include "stats/rng.hpp"
#include "variation/model.hpp"

namespace {

volatile double g_sink = 0.0;  // keeps the optimizer honest across reps

struct Update {
  std::size_t block = 0;
  double alpha = 0.0;
  double b = 0.0;
};

}  // namespace

int main() {
  using namespace obd;
  const std::size_t n_blocks = bench::env_size("OBDREL_INC_BLOCKS", 500);
  const std::size_t steps = bench::env_size("OBDREL_INC_STEPS", 2000);
  const std::size_t dirty_pct = bench::env_size("OBDREL_INC_DIRTY_PCT", 5);
  const std::size_t laps = bench::env_size("OBDREL_INC_LAPS", 3);
  const std::size_t mc_chips = bench::env_size("OBDREL_INC_MC_CHIPS", 32);
  const std::size_t mc_steps = bench::env_size("OBDREL_INC_MC_STEPS", 40);
  const std::size_t dirty_per_step =
      std::max<std::size_t>(1, n_blocks * dirty_pct / 100);

  const chip::Design design = chip::make_synthetic_design(
      "INC", {.devices = 2000000, .block_count = n_blocks, .die_width = 18.0,
              .die_height = 18.0, .seed = 7});
  std::vector<double> temps(design.blocks.size());
  for (std::size_t j = 0; j < temps.size(); ++j)
    temps[j] = 60.0 + 35.0 * design.blocks[j].activity;
  const core::AnalyticReliabilityModel model;
  const double vdd = 1.2;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, temps, vdd);

  core::HybridOptions hopts;
  hopts.n_gamma = 60;  // smaller tables: construction is not what we time
  hopts.n_b = 60;
  const core::HybridEvaluator lut(problem, hopts);
  const double t_query = 10.0 * bench::kYear;

  std::printf(
      "incremental trace replay: %zu blocks, %zu steps, %zu dirty/step "
      "(%zu%%), best of %zu lap(s)\n\n",
      problem.blocks().size(), steps, dirty_per_step, dirty_pct, laps);

  // One deterministic trace, shared by every lap and both paths: per step,
  // `dirty_per_step` blocks move to a new thermal operating point and get
  // the model's (alpha, b) there.
  const std::size_t n = problem.blocks().size();
  std::vector<std::vector<Update>> trace(steps);
  {
    stats::Rng rng(2026);
    std::vector<double> step_temps = temps;
    for (auto& step : trace) {
      step.reserve(dirty_per_step);
      for (std::size_t u = 0; u < dirty_per_step; ++u) {
        const std::size_t j = rng.below(n);
        step_temps[j] =
            std::clamp(step_temps[j] + rng.uniform(-8.0, 8.0), 45.0, 115.0);
        step.push_back(
            {j, model.alpha(step_temps[j], vdd), model.b(step_temps[j], vdd)});
      }
    }
  }

  // ------------------------------------------------- hybrid replay laps ----
  double seconds_full = 0.0;
  double seconds_incremental = 0.0;
  bool bit_identical = true;
  std::vector<double> full_results(steps);
  for (std::size_t lap = 0; lap < laps; ++lap) {
    // From-scratch path: apply the step's updates to plain vectors, then
    // re-evaluate all N blocks.
    std::vector<double> alphas(n), bs(n);
    for (std::size_t j = 0; j < n; ++j) {
      alphas[j] = problem.blocks()[j].alpha;
      bs[j] = problem.blocks()[j].b;
    }
    Stopwatch sw;
    for (std::size_t i = 0; i < steps; ++i) {
      for (const Update& u : trace[i]) {
        alphas[u.block] = u.alpha;
        bs[u.block] = u.b;
      }
      full_results[i] = lut.failure_probability_with(t_query, alphas, bs);
      g_sink = full_results[i];
    }
    const double lap_full = sw.seconds();

    // Incremental path: same updates through the dirty-tracking state;
    // only the k touched rows are recomputed per step.
    core::ChipState state(problem);
    core::IncrementalEvaluator inc(lut);
    sw.reset();
    for (std::size_t i = 0; i < steps; ++i) {
      for (const Update& u : trace[i])
        state.set_alpha_b(u.block, u.alpha, u.b);
      const double f = inc.evaluate(state, t_query);
      g_sink = f;
      if (std::bit_cast<std::uint64_t>(f) !=
          std::bit_cast<std::uint64_t>(full_results[i]))
        bit_identical = false;
    }
    const double lap_inc = sw.seconds();

    if (lap == 0 || lap_full < seconds_full) seconds_full = lap_full;
    if (lap == 0 || lap_inc < seconds_incremental) seconds_incremental = lap_inc;
  }
  const double speedup = seconds_full / seconds_incremental;
  std::printf("[hybrid replay] full %.4f s, incremental %.4f s (%.1fx), "
              "bitwise %s\n",
              seconds_full, seconds_incremental, speedup,
              bit_identical ? "IDENTICAL" : "DIFFER");

  // ------------------------------------- Monte Carlo context-reuse lap ----
  // Replay a shorter prefix (the chip sweep makes each step much more
  // expensive than a hybrid lookup), then check the incrementally-evolved
  // factor table against a cold analyzer at the final trace state.
  double mc_seconds_incremental = 0.0;
  double mc_seconds_cold = 0.0;
  bool mc_bit_identical = true;
  {
    core::MonteCarloOptions mopts;
    mopts.chip_samples = mc_chips;
    mopts.sampling = core::DeviceSampling::kBinned;
    mopts.seed = 11;
    const core::MonteCarloAnalyzer mc(problem, mopts);
    const std::vector<double> ts{5.0 * bench::kYear, 10.0 * bench::kYear};

    std::vector<double> alphas(n), bs(n);
    for (std::size_t j = 0; j < n; ++j) {
      alphas[j] = problem.blocks()[j].alpha;
      bs[j] = problem.blocks()[j].b;
    }
    const std::size_t prefix = std::min(mc_steps, steps);
    std::vector<double> last;
    Stopwatch sw;
    for (std::size_t i = 0; i < prefix; ++i) {
      for (const Update& u : trace[i]) {
        alphas[u.block] = u.alpha;
        bs[u.block] = u.b;
      }
      last = mc.failure_probabilities_with(ts, alphas, bs);
      g_sink = last.front();
    }
    mc_seconds_incremental = sw.seconds();

    // Bit gate: a fresh analyzer (same options -> identical chips) builds
    // its context from scratch at the final trace state; the result must
    // match the incrementally-evolved context exactly.
    const core::MonteCarloAnalyzer mc_cold(problem, mopts);
    const std::vector<double> cold =
        mc_cold.failure_probabilities_with(ts, alphas, bs);
    for (std::size_t k = 0; k < cold.size(); ++k)
      if (std::bit_cast<std::uint64_t>(cold[k]) !=
          std::bit_cast<std::uint64_t>(last[k]))
        mc_bit_identical = false;

    // All-dirty timing reference: same machinery, but every block's
    // (alpha, b) bit-changes each step, so every row re-enters
    // fill_bin_factors. The gap to the 5%-dirty lap is the refresh share
    // the incremental path recovers (the chip sweep itself is
    // dirty-independent).
    std::vector<double> a2(n), b2(n);
    for (std::size_t j = 0; j < n; ++j) {
      a2[j] = problem.blocks()[j].alpha;
      b2[j] = problem.blocks()[j].b;
    }
    const core::MonteCarloAnalyzer mc_full(problem, mopts);
    sw.reset();
    for (std::size_t i = 0; i < prefix; ++i) {
      const double drift = 1.0 + 1e-12 * static_cast<double>(i + 1);
      for (std::size_t j = 0; j < n; ++j) {
        a2[j] = problem.blocks()[j].alpha * drift;
        b2[j] = problem.blocks()[j].b * drift;
      }
      const std::vector<double> r = mc_full.failure_probabilities_with(ts, a2, b2);
      g_sink = r.front();
    }
    mc_seconds_cold = sw.seconds();
    std::printf("[mc context reuse] %zu steps x %zu chips: 5%%-dirty "
                "%.4f s, all-dirty %.4f s, cold-vs-evolved bitwise %s\n",
                prefix, mc_chips, mc_seconds_incremental, mc_seconds_cold,
                mc_bit_identical ? "IDENTICAL" : "DIFFER");
  }

  const bool pass = bit_identical && mc_bit_identical;
  std::printf("\nbit-identity gates %s (speedup %.1fx; >= 3x gated in CI)\n",
              pass ? "PASS" : "FAIL", speedup);

  std::string dir = csv_output_dir();
  const std::string path =
      (dir.empty() ? std::string{} : dir + "/") + "BENCH_incremental.json";
  std::ofstream out(path);
  out << "{\n"
      << "  \"blocks\": " << n << ",\n"
      << "  \"steps\": " << steps << ",\n"
      << "  \"dirty_per_step\": " << dirty_per_step << ",\n"
      << "  \"dirty_pct\": " << dirty_pct << ",\n"
      << "  \"seconds_full\": " << seconds_full << ",\n"
      << "  \"seconds_incremental\": " << seconds_incremental << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
      << ",\n"
      << "  \"mc_seconds_incremental\": " << mc_seconds_incremental << ",\n"
      << "  \"mc_seconds_full\": " << mc_seconds_cold << ",\n"
      << "  \"mc_bit_identical\": "
      << (mc_bit_identical ? "true" : "false") << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::printf("(wrote %s)\n", path.c_str());
  return pass ? 0 : 1;
}
