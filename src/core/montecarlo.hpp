// Full-chip Monte Carlo reference analysis.
//
// The validation baseline of Section V: per-device thickness sampling over
// sample chips, with the chip-conditional reliability evaluated exactly
// (eq. 11). For each sample chip we draw the principal components z, then
// every device's thickness lambda_{g,0} + lambda_g . z + lambda_r eps, and
// accumulate the per-block thickness population into a fine fixed-range
// histogram — a lossless-in-practice compression that lets R_c(t | x) be
// evaluated at any t without re-walking devices. The ensemble failure is
// the sample average of conditional failures. Complexity scales with the
// number of devices, which is precisely why Table III shows MC losing by
// orders of magnitude.
//
// Two algorithmic fast paths keep the reference usable at Table I scale:
//
// - DeviceSampling::kBinned replaces the O(devices) per-device normal draws
//   with O(bins) conditional-binomial draws of the histogram counts
//   themselves — the counts of a cell's devices across bins are exactly
//   multinomial with the Gaussian bin probabilities, so the binned sampler
//   draws from the same distribution (equivalence is pinned by chi-square
//   tests). The per-device path stays the default and the reference.
// - F(t) evaluation hoists the chip-invariant per-(t, block) exponential
//   factor tables out of the per-chip loop (EvalContext), and the batched
//   failure_probabilities() sweep reuses one context across all sweep
//   points in a single cache-friendly pass over the chips.
//
// All population-sized loops (chip sampling at construction, the F(t) /
// std-error / k-th breakdown evaluation sweeps, failure-time simulation)
// run on the shared deterministic pool (common/parallel.hpp): fixed chunk
// boundaries and ordered reduction make every result bit-identical for any
// thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.hpp"
#include "stats/rng.hpp"

namespace obd::core {

/// How MonteCarloAnalyzer turns a sample chip's grid thicknesses into
/// per-block histogram populations.
enum class DeviceSampling {
  /// One normal draw per device — the exact reference, O(devices) per chip.
  kPerDevice,
  /// Draw the bin counts directly: per grid cell, the device counts across
  /// histogram bins follow the multinomial induced by the Gaussian bin
  /// probabilities, sampled in O(bins) via conditional binomials. Same
  /// distribution as kPerDevice (not the same draws), orders of magnitude
  /// faster at Table I device counts.
  kBinned,
};

struct MonteCarloOptions {
  std::size_t chip_samples = 1000;    ///< sample chips (paper: 1000)
  std::size_t thickness_bins = 512;   ///< per-block histogram resolution
  double thickness_range_sigmas = 7.0;///< histogram half-width in sigma_tot
  std::uint64_t seed = 99;
  /// Worker-thread cap for this analyzer's loops: 0 (default) uses the
  /// shared pool at its configured width (--threads / OBDREL_THREADS /
  /// hardware_concurrency), 1 forces serial inline execution, N caps the
  /// pool at N threads for this analyzer. Each chip draws from its own
  /// seed-derived stream and reductions run over fixed chunk boundaries,
  /// so results are bit-identical for every setting.
  std::size_t threads = 0;
  /// Device-population sampler (see DeviceSampling). The binned fast path
  /// is opt-in; the default remains the exact per-device reference.
  DeviceSampling sampling = DeviceSampling::kPerDevice;
};

namespace detail {

/// Bins between exact re-anchors of the incremental exponential recurrence
/// below. Part of the numerical contract: changing it changes low-order
/// bits of every evaluated exponent.
inline constexpr std::size_t kReanchorInterval = 64;

/// Fills out[k] = exp(gb * (x_lo + (k + 0.5) * step)) for k in [0, bins).
/// Evaluated incrementally (p *= exp(gb * step)) with the running product
/// re-anchored by an exact exp every kReanchorInterval bins, bounding the
/// accumulated rounding drift of the pure recurrence (which grows linearly
/// in the bin count) to the drift across one interval.
void fill_bin_factors(double gb, double x_lo, double step, std::size_t bins,
                      std::vector<double>& out);

}  // namespace detail

class MonteCarloAnalyzer {
 public:
  /// Samples all chips up front (the expensive part; timed separately from
  /// queries by the benchmark harness).
  MonteCarloAnalyzer(const ReliabilityProblem& problem,
                     const MonteCarloOptions& options = {});

  /// Streaming factory for fleet-scale sweeps (src/fleet): builds the
  /// thickness axis but samples and stores no chips, so population size is
  /// unbounded by memory. Only accumulate_chip_range() (plus the fresh-draw
  /// sample_failure_times()) may be used on a streaming analyzer; the
  /// stored-sample queries throw kInvalidInput. options.chip_samples is
  /// ignored — the caller names chips by global index instead.
  [[nodiscard]] static MonteCarloAnalyzer streaming(
      const ReliabilityProblem& problem, const MonteCarloOptions& options = {});

  /// Partial sums of conditional failures over a contiguous range of global
  /// chip indices, for external (sharded / multi-process) reduction.
  struct RangePartial {
    std::uint64_t chips = 0;
    std::vector<double> sum_f;   ///< per sweep point, sum of F_chip
    std::vector<double> sum_f2;  ///< per sweep point, sum of F_chip^2
  };

  /// Evaluates chips [chip_begin, chip_end), each drawn from its own
  /// deterministic stream Rng::stream(seed, global_index) and discarded
  /// after evaluation. Strictly sequential in ascending chip order with
  /// ti-inner accumulation, so the result depends only on (problem,
  /// options, ts, range) — never on thread count, shard count, or how the
  /// caller partitions the population into ranges. This is the numerical
  /// contract the fleet layer's bit-identical recovery rests on.
  [[nodiscard]] RangePartial accumulate_chip_range(std::span<const double> ts,
                                                   std::uint64_t chip_begin,
                                                   std::uint64_t chip_end) const;

  /// Ensemble failure probability: mean over sample chips of the exact
  /// conditional chip failure 1 - R_c(t | x).
  [[nodiscard]] double failure_probability(double t) const;

  /// Batched F(t) sweep: failure_probability at every point of `ts` in one
  /// pass over the sample chips, with the chip-invariant per-(t, block)
  /// exponential tables built once. Bit-identical to calling
  /// failure_probability per point (both share the same evaluation kernel
  /// and chunk boundaries); the batched form is several times faster for
  /// multi-point sweeps because each chip's bin counts are streamed through
  /// the cache once per chunk instead of once per point.
  [[nodiscard]] std::vector<double> failure_probabilities(
      std::span<const double> ts) const;

  /// Batched F(t) sweep under *different* per-block oxide (alpha, b) —
  /// the Monte Carlo counterpart of
  /// HybridEvaluator::failure_probabilities_with. Aging mechanisms stay
  /// at default conditions. A cached evaluation context persists across
  /// calls: factor-table rows are pure functions of (t, alpha_j, b_j), so
  /// a repeat call with the same `ts` that changes k of N blocks (bit
  /// compare) refills only those k block rows; the reduction always runs
  /// over all blocks in fixed order, so the result is bit-identical to a
  /// cold evaluation for any update history. The cache makes concurrent
  /// calls to this method racy — one querying caller at a time (matching
  /// the serve/DRM drivers, which are single-threaded at this boundary).
  [[nodiscard]] std::vector<double> failure_probabilities_with(
      std::span<const double> ts, const std::vector<double>& alphas,
      const std::vector<double>& bs) const;

  /// Block rows of the cached context refilled by the most recent
  /// failure_probabilities_with call (N on a cold/changed-ts call, the
  /// dirty count otherwise). Observability hook for the incremental
  /// benchmarks and tests.
  [[nodiscard]] std::size_t with_rows_refreshed() const {
    return with_rows_refreshed_;
  }

  /// Standard error of failure_probability(t): sample standard deviation
  /// of the conditional failures over sqrt(chips). Lets benchmark tables
  /// report MC error bars instead of bare point estimates.
  [[nodiscard]] double failure_std_error(double t) const;

  /// Batched standard errors over a sweep (see failure_probabilities).
  [[nodiscard]] std::vector<double> failure_std_errors(
      std::span<const double> ts) const;

  [[nodiscard]] double reliability(double t) const {
    return 1.0 - failure_probability(t);
  }

  [[nodiscard]] double lifetime_at(double target) const;

  /// Ensemble probability that at least k breakdowns have occurred
  /// anywhere on the chip by time t: mean over sample chips of
  /// P(k, H_chip(t | x)) — the successive-breakdown extension (refs
  /// [28][30]; see core/multi_breakdown.hpp). k = 1 is
  /// failure_probability().
  [[nodiscard]] double kth_failure_probability(double t, std::size_t k) const;

  /// Batched k-th breakdown probabilities over a sweep.
  [[nodiscard]] std::vector<double> kth_failure_probabilities(
      std::span<const double> ts, std::size_t k) const;

  /// Lifetime at the target quantile of the k-th breakdown: the earned
  /// margin of designs that tolerate k-1 breakdowns.
  [[nodiscard]] double kth_lifetime_at(double target, std::size_t k) const;

  /// Simulates the failure time of `count` fresh sample chips (the Fig. 10
  /// "chip lifetime distribution" curve): per chip, draw all device
  /// thicknesses, then invert the conditional survivor function at an
  /// Exp(1) variate. Returned times are unsorted. The passed generator is
  /// advanced by one draw to derive the per-chip streams, so results are
  /// reproducible and independent of the thread count.
  [[nodiscard]] std::vector<double> sample_failure_times(std::size_t count,
                                                         stats::Rng& rng) const;

  /// Pre-fast-path evaluation of failure_probability: per-chip incremental
  /// exponentials recomputed inside the chip loop, no coefficient hoisting,
  /// no re-anchoring. Retained as the honest "before" baseline for
  /// bench/hot_path_scaling and as a drift witness for the re-anchored
  /// recurrence; not used by any analysis path.
  [[nodiscard]] double failure_probability_reference(double t) const;

  [[nodiscard]] std::size_t chip_samples() const { return options_.chip_samples; }
  [[nodiscard]] const ReliabilityProblem& problem() const { return *problem_; }

  /// Fraction of drawn device thicknesses that fell outside the histogram
  /// range and were accounted at the range boundary instead of inside a
  /// bin. Construction emits an "mc.binning" diagnostic when this exceeds
  /// 1e-6 (widen thickness_range_sigmas if so).
  [[nodiscard]] double out_of_range_fraction() const {
    return out_of_range_fraction_;
  }

  /// One block's thickness population pooled across all sample chips: bin
  /// counts over the common axis plus under/overflow totals. Diagnostic
  /// view used by the sampling-equivalence tests (chi-square between the
  /// per-device and binned samplers runs on these pooled counts).
  struct PooledHistogram {
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    double x_lo = 0.0;
    double x_step = 0.0;
  };
  [[nodiscard]] PooledHistogram pooled_thickness_histogram(
      std::size_t block) const;

 private:
  struct StreamingTag {};
  /// Axis-only construction backing streaming(): no chip sampling, no
  /// minimum-population requirement.
  MonteCarloAnalyzer(StreamingTag, const ReliabilityProblem& problem,
                     const MonteCarloOptions& options);

  /// Common axis setup shared by both constructors.
  void init_axis();

  /// Per-chip compressed thickness population: per block, bin counts over
  /// the common thickness axis plus explicit under/overflow counts for
  /// samples beyond the axis, evaluated at the true range boundary rather
  /// than folded into the edge bins (which would bias the edge-bin mass
  /// toward the bin center).
  struct ChipSample {
    std::vector<std::vector<std::uint32_t>> block_bins;
    std::vector<std::uint32_t> underflow;  ///< per block, x < x_lo
    std::vector<std::uint32_t> overflow;   ///< per block, x >= x_hi
    /// Per block, the [nz_lo, nz_hi) bin range holding every nonzero
    /// count, nz_lo aligned down to the dot-kernel lane width. Evaluation
    /// dots only this range; the skipped zero bins would contribute
    /// exactly +0.0 per accumulator lane, so trimming is bit-neutral.
    std::vector<std::uint32_t> nz_lo;
    std::vector<std::uint32_t> nz_hi;
  };

  /// Chip-invariant evaluation tables for a batch of sweep points: per
  /// (t, block), the per-bin exponential factors plus the boundary factors
  /// for the under/overflow populations. Built once per sweep; chips then
  /// reduce to count-vector dot products against these tables.
  struct EvalContext {
    std::size_t nt = 0;
    std::size_t nblocks = 0;
    std::size_t bins = 0;
    std::vector<double> factors;  ///< [t][block][bin]
    std::vector<double> lo;       ///< [t][block] factor at x_lo
    std::vector<double> hi;       ///< [t][block] factor at x_hi
    std::vector<double> area;     ///< [block] per-device OBD area
  };

  [[nodiscard]] ChipSample sample_chip(stats::Rng& rng) const;

  /// Binned fast path for one grid cell: draws the multinomial bin counts
  /// of `count` devices at N(mu, sr^2) directly via conditional binomials.
  void sample_cell_binned(std::size_t count, double mu, double sr,
                          std::vector<std::uint32_t>& counts,
                          std::uint32_t& underflow, std::uint32_t& overflow,
                          stats::Rng& rng) const;

  [[nodiscard]] EvalContext build_eval_context(
      std::span<const double> ts) const;

  /// Ensemble reduction over the stored chips against a prebuilt context,
  /// including the deterministic aging fold. failure_probabilities and
  /// failure_probabilities_with share this kernel, so their results are
  /// bit-identical by construction whenever their contexts are.
  [[nodiscard]] std::vector<double> sweep_over_context(
      const EvalContext& ctx, std::span<const double> ts) const;

  /// Differential refresh of the cached `with` context: a full rebuild
  /// when the sweep points changed (bit compare) or no cache exists,
  /// otherwise only the block rows whose (alpha, b) bits changed.
  void refresh_with_context(std::span<const double> ts,
                            const std::vector<double>& alphas,
                            const std::vector<double>& bs) const;

  /// Sum over blocks of A-weighted Weibull exponents for one chip:
  /// H(t) = sum_j a_j sum_bins count * exp(gamma_j b_j x_bin), with the
  /// under/overflow populations contributing at the axis boundaries.
  /// Shares the factor-table + fixed-accumulator kernel with the batched
  /// path, so the scalar and batched evaluations are bit-identical.
  [[nodiscard]] double chip_exponent(const ChipSample& chip, double t) const;

  /// Batched-kernel evaluation of one chip at sweep point `ti` of `ctx`.
  [[nodiscard]] double chip_exponent_ctx(const ChipSample& chip,
                                         const EvalContext& ctx,
                                         std::size_t ti) const;

  /// Legacy evaluation (pre-hoisting incremental recurrence) backing
  /// failure_probability_reference only.
  [[nodiscard]] double chip_exponent_reference(const ChipSample& chip,
                                               double t) const;

  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  MonteCarloOptions options_;
  double x_lo_ = 0.0;   ///< histogram lower edge [nm]
  double x_step_ = 0.0; ///< bin width [nm]
  double x_hi_ = 0.0;   ///< histogram upper edge [nm]
  double out_of_range_fraction_ = 0.0;
  std::vector<ChipSample> chips_;

  // Cached state of failure_probabilities_with (see the public contract):
  // the context plus the (ts, alpha, b) values it was filled for.
  mutable EvalContext with_ctx_;
  mutable std::vector<double> with_ts_;
  mutable std::vector<double> with_alphas_;
  mutable std::vector<double> with_bs_;
  mutable bool with_valid_ = false;
  mutable std::size_t with_rows_refreshed_ = 0;
};

}  // namespace obd::core
