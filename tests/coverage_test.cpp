// Cross-cutting coverage: file-based I/O round trips, quad-tree problems
// through the full analyzer stack, LHS-driven st_MC, the three-moment
// analyzer option, and the public hybrid block lookup.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "chip/design.hpp"
#include "chip/floorplan_io.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "core/analytic.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "power/trace_io.hpp"
#include "thermal/image.hpp"
#include "thermal/solver.hpp"

namespace obd {
namespace {

// Temporary file helper (unique per test-process).
std::string temp_path(const char* stem) {
  return std::string(::testing::TempDir()) + "/obdrel_" + stem;
}

TEST(FileRoundTrips, FloorplanAndTraceFiles) {
  const chip::Design d = chip::make_benchmark(1);
  const std::string flp = temp_path("rt.flp");
  {
    std::ofstream out(flp);
    chip::save_floorplan(out, d);
  }
  const chip::Design loaded = chip::load_floorplan_file(flp, {.name = "C1"});
  EXPECT_EQ(loaded.blocks.size(), d.blocks.size());
  EXPECT_NEAR(loaded.width, d.width, 1e-9);

  const std::string ptrace = temp_path("rt.ptrace");
  {
    std::ofstream out(ptrace);
    std::vector<power::PowerMap> maps(2);
    maps[0].block_watts.assign(d.blocks.size(), 1.0);
    maps[1].block_watts.assign(d.blocks.size(), 2.0);
    power::save_power_trace(out, d, maps);
  }
  const auto trace = power::load_power_trace_file(ptrace, d);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[1].block_watts[0], 2.0);

  EXPECT_THROW(chip::load_floorplan_file("/nonexistent/x.flp"), Error);
  EXPECT_THROW(power::load_power_trace_file("/nonexistent/x.ptrace", d),
               Error);
  std::remove(flp.c_str());
  std::remove(ptrace.c_str());
}

TEST(FileRoundTrips, ConfigFile) {
  const std::string path = temp_path("cfg");
  {
    std::ofstream out(path);
    out << "design = c2\nvdd = 1.15\n";
  }
  const Config cfg = Config::parse_file(path);
  EXPECT_EQ(cfg.get_string("design"), "c2");
  EXPECT_DOUBLE_EQ(cfg.get_double("vdd"), 1.15);
  EXPECT_THROW(Config::parse_file("/nonexistent/cfg"), Error);
  std::remove(path.c_str());
}

TEST(FileRoundTrips, ThermalImageFiles) {
  const chip::Design d = chip::make_benchmark(1);
  const auto power = power::estimate_power(d, {});
  thermal::ThermalParams tp;
  tp.resolution = 8;
  const auto profile = thermal::solve_thermal(d, power, tp);
  const std::string pgm = temp_path("map.pgm");
  const std::string ppm = temp_path("map.ppm");
  thermal::write_pgm_file(pgm, profile, 2);
  thermal::write_ppm_file(ppm, profile, 2);
  std::ifstream p1(pgm, std::ios::binary);
  std::ifstream p2(ppm, std::ios::binary);
  std::string magic1, magic2;
  p1 >> magic1;
  p2 >> magic2;
  EXPECT_EQ(magic1, "P5");
  EXPECT_EQ(magic2, "P6");
  EXPECT_THROW(thermal::write_pgm_file("/nonexistent/dir/x.pgm", profile),
               Error);
  std::remove(pgm.c_str());
  std::remove(ppm.c_str());
}

class QuadTreeProblemFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "Q1", {.devices = 20000, .block_count = 4, .die_width = 5.0,
               .die_height = 5.0, .seed = 121}));
    model_ = new core::AnalyticReliabilityModel();
  }
  static void TearDownTestSuite() {
    delete model_;
    delete design_;
    model_ = nullptr;
    design_ = nullptr;
  }
  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
};

chip::Design* QuadTreeProblemFixture::design_ = nullptr;
core::AnalyticReliabilityModel* QuadTreeProblemFixture::model_ = nullptr;

TEST_F(QuadTreeProblemFixture, FullStackRunsAndAgreesWithGridModel) {
  const std::vector<double> temps{85.0, 65.0, 75.0, 92.0};
  core::ProblemOptions grid_opts;
  grid_opts.grid_cells_per_side = 10;
  core::ProblemOptions qt_opts = grid_opts;
  qt_opts.structure = core::CorrelationStructure::kQuadTree;

  const auto grid_problem = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, temps, 1.2, grid_opts);
  const auto qt_problem = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, temps, 1.2, qt_opts);

  const core::AnalyticAnalyzer grid_fast(grid_problem);
  const core::AnalyticAnalyzer qt_fast(qt_problem);
  // Different correlation families, same variance budget: lifetimes agree
  // closely (failure is dominated by the shared global mode).
  EXPECT_NEAR(qt_fast.lifetime_at(core::kTenFaultsPerMillion) /
                  grid_fast.lifetime_at(core::kTenFaultsPerMillion),
              1.0, 0.05);
}

TEST_F(QuadTreeProblemFixture, LatinHypercubeStMcMatchesPlain) {
  const std::vector<double> temps{85.0, 65.0, 75.0, 92.0};
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  const auto problem = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, temps, 1.2, opts);
  const core::StMcAnalyzer plain(problem, {.samples = 6000});
  const core::StMcAnalyzer lhs(problem,
                               {.samples = 6000, .latin_hypercube = true});
  EXPECT_NEAR(lhs.lifetime_at(core::kTenFaultsPerMillion) /
                  plain.lifetime_at(core::kTenFaultsPerMillion),
              1.0, 0.05);
}

TEST_F(QuadTreeProblemFixture, ThreeMomentAnalyzerOptionTracksDefault) {
  const std::vector<double> temps{85.0, 65.0, 75.0, 92.0};
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  const auto problem = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, temps, 1.2, opts);
  core::AnalyticOptions three;
  three.v_three_moment = true;
  const core::AnalyticAnalyzer two_m(problem);
  const core::AnalyticAnalyzer three_m(problem, three);
  EXPECT_NEAR(three_m.lifetime_at(core::kOneFaultPerMillion) /
                  two_m.lifetime_at(core::kOneFaultPerMillion),
              1.0, 0.02);
}

TEST_F(QuadTreeProblemFixture, HybridBlockLookupIsMonotoneInGamma) {
  const std::vector<double> temps{85.0, 65.0, 75.0, 92.0};
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  const auto problem = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, temps, 1.2, opts);
  const core::HybridEvaluator hybrid(problem);
  const auto& hopts = hybrid.options();
  double prev = -1.0;
  for (double g = hopts.gamma_lo; g <= hopts.gamma_hi; g += 2.0) {
    const double v = hybrid.block_failure(0, g, 0.64);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

}  // namespace
}  // namespace obd
