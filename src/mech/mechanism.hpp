// FailureMechanism: the per-block failure-time law of one wear-out
// mechanism as a function of operating conditions (temperature, supply,
// switching activity) and time.
//
// The paper's gate-oxide breakdown model is one implementation (wrapped
// behind this interface in core/oxide_mechanism.*, bit-for-bit identical
// to the direct evaluators); the aging mechanisms NBTI, EM (Black's
// equation), and HCI share a lognormal TTF with Arrhenius-style
// temperature acceleration using the same Kelvin-offset conventions as
// core/device_model.cpp.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "mech/spec.hpp"

namespace obd::mech {

/// Celsius -> Kelvin offset, matching core/device_model.cpp.
inline constexpr double kKelvinOffset = 273.15;

/// Boltzmann constant [eV/K] for Arrhenius acceleration factors.
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Seconds per year used to convert configured t50_years to seconds.
/// Matches the 365.25-day year used throughout the reporting layer.
inline constexpr double kSecondsPerYear = 365.25 * 24.0 * 3600.0;

/// Operating point of one block. Temperatures are Celsius (converted to
/// Kelvin internally, like device_model.cpp); activity is the mean
/// switching activity in (0, 1] and doubles as the current-density proxy
/// for EM's Black-equation exponent.
struct OperatingConditions {
  double temp_c = 100.0;
  double vdd = 1.2;
  double activity = 0.5;
};

/// Interface: per-block failure CDF/quantile/hazard of one mechanism.
/// Implementations must be deterministic and thread-safe for concurrent
/// const calls — evaluators invoke them from the parallel sweep paths.
class FailureMechanism {
 public:
  virtual ~FailureMechanism() = default;

  /// Short stable name ("nbti", "em", "hci", "oxide").
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Failure probability of block `j` by time `t` [s] under conditions
  /// `c`, monotone non-decreasing in t with F(0) = 0.
  [[nodiscard]] virtual double block_cdf(std::size_t j, double t,
                                         const OperatingConditions& c)
      const = 0;

  /// Inverse CDF: the time [s] at which block `j` reaches failure
  /// probability `f` under `c`. Used by the DRM effective-age recursion.
  [[nodiscard]] virtual double block_time_at(std::size_t j, double f,
                                             const OperatingConditions& c)
      const = 0;

  /// Instantaneous hazard rate h(t) = f(t) / (1 - F(t)) [1/s]. The default
  /// uses a central finite difference of the CDF; closed-form
  /// implementations may override.
  [[nodiscard]] virtual double block_hazard(std::size_t j, double t,
                                            const OperatingConditions& c)
      const;
};

/// Lognormal-TTF mechanism: F(t) = Phi((ln t - ln t50(c)) / sigma) with
///   ln t50(c) = ln t50_ref + Ea/k (1/T - 1/Tref)      (Arrhenius)
///               - gamma_v (V - Vref)                   (voltage)
///               - n ln(activity)                       (activity power law)
/// where T, Tref are Kelvin. All blocks share the same law; per-block
/// differentiation enters through the per-block operating conditions.
class LognormalMechanism final : public FailureMechanism {
 public:
  LognormalMechanism(std::string name, const MechanismParams& params,
                     double tref_c, double vref);

  [[nodiscard]] const std::string& name() const override { return name_; }

  /// Median TTF [s] under the given conditions.
  [[nodiscard]] double t50(const OperatingConditions& c) const;

  [[nodiscard]] double block_cdf(std::size_t j, double t,
                                 const OperatingConditions& c) const override;
  [[nodiscard]] double block_time_at(std::size_t j, double f,
                                     const OperatingConditions& c)
      const override;
  [[nodiscard]] double block_hazard(std::size_t j, double t,
                                    const OperatingConditions& c)
      const override;

 private:
  std::string name_;
  MechanismParams params_;
  double tref_c_;
  double vref_;
  double log_t50_ref_s_;  ///< ln(t50_ref) in seconds, precomputed
};

/// Builds the enabled aging mechanisms of `spec` (in the fixed order
/// nbti, em, hci). The oxide base model is not included — it stays in the
/// evaluators' existing hot paths and is only wrapped behind the
/// interface by core::OxideMechanism for interface-level consumers.
[[nodiscard]] std::vector<std::unique_ptr<FailureMechanism>>
make_aging_mechanisms(const MechanismSpec& spec);

}  // namespace obd::mech
