// Plain-text table printer used by the bench binaries to emit the same
// rows/columns the paper's tables report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace obd {

/// Accumulates rows of strings and prints them as an aligned ASCII table.
///
/// Example:
///   TextTable t({"ckt.", "#Device", "st_fast", "MC"});
///   t.add_row({"C1", "50K", "0.8", "267"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row. The row must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Writes the table, column-aligned, with a rule under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` significant decimal places ("%.*f").
std::string fmt(double value, int digits = 2);

/// Formats a device count the way the paper writes it: 50000 -> "50K",
/// 840000 -> "0.84M".
std::string fmt_count(std::size_t n);

}  // namespace obd
