// Device-level degradation trace: soft breakdown to hard breakdown.
//
// Reproduces the qualitative gate-leakage-vs-stress-time behaviour of
// Fig. 3 (a stressed 45 nm device at 3.1 V / 100 C): a slowly drifting
// direct-tunneling baseline (stress-induced leakage current), a
// Weibull-distributed soft-breakdown event that multiplies the leakage by
// 10-20x, a monotone post-SBD power-law growth of the breakdown path, and a
// hard breakdown once the current reaches the HBD criterion (Section III;
// refs [4][28]). The paper uses SBD initiation as the chip failure
// criterion; this simulator is the measurement-level substrate behind that
// choice.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace obd::core {

struct DegradationParams {
  /// Weibull characteristic life of SBD under the stress condition [s].
  double alpha_stress = 5.0e3;
  /// Weibull slope under stress (beta = b * x for the stressed thickness).
  double beta_stress = 1.4;
  /// Fresh-device gate leakage [A].
  double initial_leakage = 2.0e-9;
  /// Relative SILC drift of the pre-SBD baseline per decade of time.
  double pre_sbd_drift_per_decade = 0.08;
  /// Leakage multiplication at the SBD event (paper: "10-20 times").
  double sbd_jump = 15.0;
  /// Post-SBD growth-law exponent: I ~ (1 + (t - t_sbd)/tau)^p.
  double post_sbd_exponent = 3.0;
  /// Post-SBD growth time constant as a fraction of t_sbd.
  double post_sbd_tau_fraction = 0.3;
  /// Hard-breakdown current criterion [A].
  double hbd_current = 1.0e-4;
  /// Current after HBD (measurement compliance limit) [A].
  double compliance_current = 1.0e-3;
};

/// A simulated gate-leakage trace.
struct LeakageTrace {
  std::vector<double> time_s;
  std::vector<double> leakage_a;
  double t_sbd = 0.0;  ///< soft-breakdown time [s]
  double t_hbd = 0.0;  ///< hard-breakdown time [s] (0 if not reached)
};

/// Simulates one stressed device for `points` log-spaced time samples over
/// [t_start, t_end]. The SBD instant is drawn from the stress Weibull.
LeakageTrace simulate_degradation(const DegradationParams& params,
                                  stats::Rng& rng, double t_start = 1.0,
                                  double t_end = 1.0e5,
                                  std::size_t points = 400);

/// Deterministic leakage evaluation for a known SBD time (exposed for
/// testing and for plotting families of traces).
double leakage_at(const DegradationParams& params, double t, double t_sbd);

/// Hard-breakdown time implied by `params` for a known SBD time: the
/// instant the post-SBD growth law crosses hbd_current.
double hbd_time(const DegradationParams& params, double t_sbd);

}  // namespace obd::core
