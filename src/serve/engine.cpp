#include "serve/engine.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "chip/design.hpp"
#include "chip/floorplan_io.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "core/analytic.hpp"
#include "core/device_model.hpp"
#include "mech/spec.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

namespace obd::serve {
namespace {

/// Config keys a request may override via `set.<key>=`. Everything here
/// shapes the evaluation context and is folded into problem_key(); keys
/// outside the list (threads, faults, ...) are daemon policy and rejected.
const std::set<std::string>& override_whitelist() {
  static const std::set<std::string> keys = {
      "design",         "device_density", "vdd",
      "rho_dist",       "grid",           "ambient_c",
      "variance_capture", "eigen_solver", "thermal_sweep",
      "mechanisms",     "redundancy",
  };
  return keys;
}

std::string fmt17(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_double_field(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    require(pos == value.size() && std::isfinite(v), ErrorCode::kInvalidInput,
            "serve: field " + key + "='" + value + "' is not a number");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("serve: field " + key + "='" + value + "' is not a number",
                ErrorCode::kInvalidInput);
  }
}

chip::Design load_design(const Config& cfg) {
  const std::string design = cfg.get_string("design", "c1");
  if (design == "ev6" || design == "c6") return chip::make_ev6_design();
  if (design == "manycore") return chip::make_manycore_design();
  if (design.size() == 2 && design[0] == 'c' && design[1] >= '1' &&
      design[1] <= '6')
    return chip::make_benchmark(design[1] - '0');
  chip::FloorplanLoadOptions opts;
  opts.device_density = cfg.get_double("device_density", 3000.0);
  opts.name = design;
  return chip::load_floorplan_file(design, opts);
}

thermal::SweepOrder parse_thermal_sweep(const Config& cfg) {
  const std::string v = cfg.get_string("thermal_sweep", "lexicographic");
  if (v == "lexicographic") return thermal::SweepOrder::kLexicographic;
  if (v == "redblack") return thermal::SweepOrder::kRedBlack;
  throw Error(
      "thermal_sweep must be 'lexicographic' or 'redblack', got '" + v + "'",
      ErrorCode::kConfig);
}

var::EigenSolver parse_eigen_solver(const Config& cfg) {
  const std::string v = cfg.get_string("eigen_solver", "dense");
  if (v == "dense") return var::EigenSolver::kDense;
  if (v == "truncated") return var::EigenSolver::kTruncated;
  throw Error("eigen_solver must be 'dense' or 'truncated', got '" + v + "'",
              ErrorCode::kConfig);
}

/// Materialized evaluation context for one fingerprint: the full
/// power -> thermal -> problem pipeline on the overridden config (same
/// semantics as the CLI's one-shot commands, so a served answer matches
/// `obdrel lut query` on the equivalent config byte for byte).
std::unique_ptr<core::ReliabilityProblem> build_problem(const Config& cfg) {
  const chip::Design design = load_design(cfg);
  const double vdd = cfg.get_double("vdd", 1.2);
  power::PowerParams pp;
  pp.vdd = vdd;
  thermal::ThermalParams tp;
  tp.ambient_c = cfg.get_double("ambient_c", 45.0);
  tp.resolution = 48;
  tp.sweep = parse_thermal_sweep(cfg);
  const thermal::ThermalProfile profile =
      thermal::power_thermal_fixed_point(design, pp, tp, 2);

  core::ProblemOptions opts;
  opts.rho_dist = cfg.get_double("rho_dist", 0.5);
  opts.grid_cells_per_side = cfg.get_count("grid", 25);
  opts.variance_capture = cfg.get_double("variance_capture", 0.999);
  require(opts.variance_capture > 0.0 && opts.variance_capture <= 1.0,
          ErrorCode::kConfig, "variance_capture must be in (0, 1]");
  opts.eigen_solver = parse_eigen_solver(cfg);
  opts.mechanisms = mech::parse_spec(cfg);
  return std::make_unique<core::ReliabilityProblem>(
      core::ReliabilityProblem::build(design, var::VariationBudget{},
                                      core::AnalyticReliabilityModel{},
                                      profile.block_temps_c, vdd, opts));
}

/// `surrogate` < 0 omits the field entirely — the tier-off reply is
/// byte-identical to an engine that never had a surrogate tier.
std::string reply_ok(const std::string& id, double t, double f,
                     bool degraded, int surrogate = -1) {
  std::string r = "id=" + id + " ok=1 t=" + fmt17(t) + " f=" + fmt17(f) +
                  " degraded=" + (degraded ? "1" : "0");
  if (surrogate >= 0)
    r += std::string(" surrogate=") + (surrogate > 0 ? "1" : "0");
  return r;
}

std::string reply_error(const std::string& id, const Error& e) {
  return "id=" + id + " error=" + to_string(e.code()) + " msg=" + e.what();
}

}  // namespace

Request parse_request(const std::string& line) {
  Request req;
  bool have_t = false;
  std::istringstream is(line);
  std::string field;
  while (is >> field) {
    const std::size_t eq = field.find('=');
    require(eq != std::string::npos && eq > 0, ErrorCode::kInvalidInput,
            "serve: field '" + field + "' is not key=value");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "op") {
      require(value == "query" || value == "health", ErrorCode::kInvalidInput,
              "serve: op must be 'query' or 'health', got '" + value + "'");
      req.op = (value == "health") ? Request::Op::kHealth
                                   : Request::Op::kQuery;
    } else if (key == "id") {
      req.id = value;
    } else if (key == "t") {
      req.t = parse_double_field(key, value);
      have_t = true;
    } else if (key == "deadline_ms") {
      req.deadline_ms = parse_double_field(key, value);
      require(req.deadline_ms >= 0.0, ErrorCode::kInvalidInput,
              "serve: deadline_ms must be non-negative");
    } else if (key == "cond.dt") {
      req.cond_dt = parse_double_field(key, value);
      req.has_cond = true;
    } else if (key == "cond.vdd") {
      req.cond_vdd = parse_double_field(key, value);
      require(req.cond_vdd > 0.0, ErrorCode::kInvalidInput,
              "serve: cond.vdd must be positive");
      req.has_cond = true;
    } else if (key == "cond.act") {
      req.cond_act = parse_double_field(key, value);
      require(req.cond_act > 0.0, ErrorCode::kInvalidInput,
              "serve: cond.act must be positive");
      req.has_cond = true;
    } else if (key.rfind("cond.dt.", 0) == 0) {
      const std::string idx = key.substr(8);
      std::size_t pos = 0;
      std::size_t block = 0;
      try {
        block = std::stoul(idx, &pos);
      } catch (const std::exception&) {
        pos = std::string::npos;
      }
      require(!idx.empty() && pos == idx.size(), ErrorCode::kInvalidInput,
              "serve: cond.dt.<block> needs a block index, got '" + idx +
                  "'");
      req.cond_block_dt.emplace_back(block, parse_double_field(key, value));
      req.has_cond = true;
    } else if (key.rfind("set.", 0) == 0) {
      const std::string cfg_key = key.substr(4);
      require(override_whitelist().count(cfg_key) != 0,
              ErrorCode::kInvalidInput,
              "serve: config key '" + cfg_key + "' cannot be overridden "
              "per request");
      require(!value.empty(), ErrorCode::kInvalidInput,
              "serve: override " + key + " has an empty value");
      req.overrides[cfg_key] = value;
    } else {
      throw Error("serve: unknown request field '" + key + "'",
                  ErrorCode::kInvalidInput);
    }
  }
  if (req.op == Request::Op::kQuery) {
    require(have_t, ErrorCode::kInvalidInput,
            "serve: query needs a t=<seconds> field");
    require(req.t > 0.0 && std::isfinite(req.t), ErrorCode::kInvalidInput,
            "serve: t must be a positive finite time");
    require(!req.id.empty(), ErrorCode::kInvalidInput,
            "serve: query needs an id=<token> field");
  }
  return req;
}

std::string problem_key(const Config& cfg) {
  return problem_key(cfg, mech::parse_spec(cfg).canonical());
}

std::string problem_key(const Config& cfg, const std::string& mechanisms) {
  const auto d = [](double v) { return fmt17(v); };
  std::ostringstream os;
  os << "design=" << cfg.get_string("design", "c1")
     << ";device_density=" << d(cfg.get_double("device_density", 3000.0))
     << ";vdd=" << d(cfg.get_double("vdd", 1.2))
     << ";rho_dist=" << d(cfg.get_double("rho_dist", 0.5))
     << ";grid=" << cfg.get_count("grid", 25)
     << ";ambient_c=" << d(cfg.get_double("ambient_c", 45.0))
     << ";variance_capture=" << d(cfg.get_double("variance_capture", 0.999))
     << ";eigen_solver=" << cfg.get_string("eigen_solver", "dense")
     << ";thermal_sweep=" << cfg.get_string("thermal_sweep", "lexicographic")
     << ";n_gamma=" << cfg.get_count("serve_n_gamma", 100)
     << ";n_b=" << cfg.get_count("serve_n_b", 100);
  // Appended only for non-default mechanism specs: seed-era keys (and the
  // disk-tier fingerprints derived from them) stay byte-identical.
  if (mechanisms != "oxide") os << ";mechanisms=" << mechanisms;
  return os.str();
}

bool deadline_expired(double elapsed_ms, double deadline_ms) {
  if (deadline_ms <= 0.0) return false;  // deadlines disabled
  if (fault::should_fire(fault::site::kServeDeadline)) {
    diagnostics().warn("serve.deadline",
                       "injected deadline expiry: degrading to the "
                       "analytic fast path");
    return true;
  }
  return elapsed_ms >= deadline_ms;
}

QueryEngine::QueryEngine(Config base, EngineOptions options)
    : base_(std::move(base)),
      options_(options),
      cache_(options.cache) {}

std::string QueryEngine::canonical_mechanisms(const Config& cfg) {
  auto key = std::make_pair(cfg.get_string("mechanisms", "oxide"),
                            cfg.get_string("redundancy", ""));
  const auto it = mech_memo_.find(key);
  if (it != mech_memo_.end()) return it->second;
  std::string rendered = mech::parse_spec(cfg).canonical();
  // Bound the memo against adversarial clients cycling distinct specs;
  // a miss past the cap just re-renders (the pre-memo behavior).
  if (mech_memo_.size() < 256)
    mech_memo_.emplace(std::move(key), rendered);
  return rendered;
}

std::vector<std::string> QueryEngine::evaluate(
    const std::vector<PendingQuery>& batch) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::string> replies(batch.size());

  // Coalesce: queries sharing a fingerprint share one evaluation context
  // and one batched sweep. Group by the canonical key (exact), not the
  // fingerprint (hashed) — a collision must not merge distinct problems.
  struct Group {
    Config cfg;
    std::vector<std::size_t> indices;
  };
  std::map<std::string, Group> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& req = batch[i].request;
    try {
      require(req.op == Request::Op::kQuery, ErrorCode::kInvalidInput,
              "serve: health queries bypass the evaluator");
      Config cfg = base_;
      for (const auto& [key, value] : req.overrides) cfg.set(key, value);
      auto [it, inserted] =
          groups.try_emplace(problem_key(cfg, canonical_mechanisms(cfg)));
      if (inserted) it->second.cfg = std::move(cfg);
      it->second.indices.push_back(i);
    } catch (const Error& e) {
      ++stats_.errors;
      replies[i] = reply_error(req.id, e);
    }
  }

  for (auto& [key, group] : groups) {
    const std::uint64_t fp = fingerprint(key);
    try {
      CacheEntry* entry = cache_.find(fp);
      // -1 omits the surrogate reply field entirely: with the tier off
      // every reply is byte-identical to an engine that never had it.
      const int flag_exact = options_.surrogate ? 0 : -1;
      surrogate::SurrogateModel* sur =
          options_.surrogate ? surrogate_for(fp, key) : nullptr;
      const double cfg_vdd = group.cfg.get_double("vdd", 1.2);
      const auto corner_vdd = [&](const Request& rq) {
        return std::isnan(rq.cond_vdd) ? cfg_vdd : rq.cond_vdd;
      };
      const auto surrogate_covers = [&](const Request& rq) {
        return sur != nullptr && sur->certificate().certified &&
               rq.cond_block_dt.empty() &&
               sur->in_domain(rq.cond_dt, corner_vdd(rq), rq.cond_act, rq.t);
      };

      // Surrogate tier: certified in-domain queries are answered from the
      // Chebyshev model with no problem build — unless the memory tier
      // already holds the tables, where exact is just as cheap and beats
      // approximate. Everything the certificate does not cover falls
      // through to the exact path below.
      std::vector<std::size_t> exact;
      exact.reserve(group.indices.size());
      if (sur != nullptr) {
        for (const std::size_t i : group.indices) {
          const Request& rq = batch[i].request;
          if (!surrogate_covers(rq)) {
            ++stats_.surrogate_fallthrough;
            exact.push_back(i);
          } else if (entry != nullptr) {
            exact.push_back(i);
          } else {
            replies[i] = reply_ok(
                rq.id, rq.t,
                sur->evaluate(rq.cond_dt, corner_vdd(rq), rq.cond_act, rq.t),
                false, 1);
            ++stats_.answered;
            ++stats_.surrogate_hits;
          }
        }
        if (exact.empty()) continue;  // no tables needed at all
      } else {
        exact = group.indices;
      }

      if (entry == nullptr) {
        // Cold fingerprint: the problem build (thermal + PCA) is needed by
        // every path, exact or degraded.
        auto problem = build_problem(group.cfg);

        // Partition now, against the post-build clock: requests whose
        // deadline has already expired get the analytic approximation
        // instead of waiting for the table fill.
        const std::vector<std::size_t> need = exact;
        std::vector<std::size_t> expired;
        exact.clear();
        for (const std::size_t i : need) {
          const double elapsed_ms =
              std::chrono::duration<double, std::milli>(now -
                                                        batch[i].arrival)
                  .count();
          const double deadline = batch[i].request.deadline_ms >= 0.0
                                      ? batch[i].request.deadline_ms
                                      : options_.deadline_ms;
          if (deadline_expired(elapsed_ms, deadline))
            expired.push_back(i);
          else
            exact.push_back(i);
        }
        if (!expired.empty()) {
          const core::AnalyticAnalyzer analytic(*problem);
          for (const std::size_t i : expired) {
            const double t = batch[i].request.t;
            replies[i] = reply_ok(batch[i].request.id, t,
                                  analytic.failure_probability(t), true,
                                  flag_exact);
            ++stats_.answered;
            ++stats_.degraded;
          }
        }
        if (exact.empty()) continue;  // nothing left to build tables for

        // Disk tier first; only a true miss pays the table fill.
        core::HybridOptions hopts;
        hopts.n_gamma = options_.n_gamma;
        hopts.n_b = options_.n_b;
        std::unique_ptr<core::HybridEvaluator> hybrid;
        if (auto loaded = cache_.load_disk(fp, key, *problem)) {
          hybrid =
              std::make_unique<core::HybridEvaluator>(std::move(*loaded));
        } else {
          cache_.record_miss();
          hybrid = std::make_unique<core::HybridEvaluator>(*problem, hopts);
        }
        CacheEntry fresh;
        fresh.key = key;
        fresh.fp = fp;
        fresh.bytes = entry_bytes(problem->blocks().size(), hopts.n_gamma,
                                  hopts.n_b);
        fresh.problem = std::move(problem);
        fresh.hybrid = std::move(hybrid);
        entry = cache_.insert(std::move(fresh));

        // The build is the expensive part of a fit, and it just happened:
        // fit + certify + persist the surrogate now (one attempt per
        // fingerprint) so future cold batches skip the build entirely.
        if (options_.surrogate) fit_surrogate(fp, key, *entry->problem);
      }

      // Exact path. Plain queries keep the batched table sweep (bits
      // unchanged); cond.* queries go through the session's incremental
      // corner evaluator.
      std::vector<std::size_t> plain;
      std::vector<std::size_t> conds;
      for (const std::size_t i : exact)
        (batch[i].request.has_cond ? conds : plain).push_back(i);

      if (!plain.empty()) {
        std::vector<double> ts;
        ts.reserve(plain.size());
        for (const std::size_t i : plain) ts.push_back(batch[i].request.t);
        const std::vector<double> fs =
            entry->hybrid->failure_probabilities(ts);
        for (std::size_t k = 0; k < plain.size(); ++k) {
          replies[plain[k]] = reply_ok(batch[plain[k]].request.id, ts[k],
                                       fs[k], false, flag_exact);
          ++stats_.answered;
        }
      }

      for (const std::size_t i : conds) {
        const Request& rq = batch[i].request;
        try {
          core::ConditionEvaluator& ce =
              session_evaluator(batch[i].session, fp, *entry);
          ce.set_corner(rq.cond_dt, corner_vdd(rq), rq.cond_act);
          for (const auto& [j, dtj] : rq.cond_block_dt) {
            require(j < entry->problem->blocks().size(),
                    ErrorCode::kInvalidInput,
                    "serve: cond.dt." + std::to_string(j) +
                        " is out of range for this design");
            ce.set_block_dt(j, dtj);
          }
          const core::IncrementalStats before = ce.stats();
          const double f = ce.evaluate(rq.t);
          const core::IncrementalStats after = ce.stats();
          stats_.incremental_hits +=
              (after.evaluations - before.evaluations) -
              (after.full_rebuilds - before.full_rebuilds);
          replies[i] = reply_ok(rq.id, rq.t, f, false, flag_exact);
          ++stats_.answered;
        } catch (const Error& e) {
          ++stats_.errors;
          replies[i] = reply_error(rq.id, e);
        }
      }
    } catch (const Error& e) {
      for (const std::size_t i : group.indices) {
        if (!replies[i].empty()) continue;  // already answered (degraded)
        ++stats_.errors;
        replies[i] = reply_error(batch[i].request.id, e);
      }
    }
  }
  return replies;
}

void QueryEngine::end_session(int session) { sessions_.erase(session); }

surrogate::SurrogateModel* QueryEngine::surrogate_for(
    std::uint64_t fp, const std::string& key) {
  SurrogateState& st = surrogates_[fp];
  if (st.key.empty()) st.key = key;
  if (st.key != key) return nullptr;  // fingerprint collision: refuse
  if (st.model == nullptr && !st.load_attempted) {
    st.load_attempted = true;
    if (!cache_.options().dir.empty()) {
      const std::string path = surrogate_file_path(cache_.options().dir, fp);
      // read_cache_file quarantines a corrupt or foreign file itself; a
      // CRC-valid payload from an older schema is a refit, not a crash.
      if (const auto text = read_cache_file(path, key)) {
        if (auto loaded = surrogate::SurrogateModel::load_text(*text)) {
          st.model = std::make_unique<surrogate::SurrogateModel>(
              std::move(*loaded));
        } else {
          diagnostics().warn("serve.surrogate",
                             "surrogate file '" + path +
                                 "' has an unknown schema; refitting");
        }
      }
    }
  }
  return st.model.get();
}

void QueryEngine::fit_surrogate(std::uint64_t fp, const std::string& key,
                                const core::ReliabilityProblem& problem) {
  SurrogateState& st = surrogates_[fp];
  if (st.key.empty()) st.key = key;
  if (st.key != key || st.model != nullptr || st.fit_attempted) return;
  st.fit_attempted = true;
  try {
    auto model = std::make_unique<surrogate::SurrogateModel>(
        surrogate::SurrogateModel::fit(problem, options_.surrogate_opts));
    if (!model->certificate().certified) {
      // Kept in memory (so the refusal is remembered, not refit per
      // batch) but never persisted — an uncertified model answers nothing.
      diagnostics().warn(
          "serve.surrogate",
          "surrogate failed certification (max_rel_error=" +
              std::to_string(model->certificate().max_rel_error) +
              " > tol); every query stays on the exact path");
    } else if (!cache_.options().dir.empty()) {
      write_cache_file(surrogate_file_path(cache_.options().dir, fp), key,
                       model->save_text());
    }
    st.model = std::move(model);
  } catch (const Error& e) {
    diagnostics().warn("serve.surrogate",
                       std::string("surrogate fit failed: ") + e.what());
  }
}

core::ConditionEvaluator& QueryEngine::session_evaluator(
    int session, std::uint64_t fp, const CacheEntry& entry) {
  auto& per_fp = sessions_[session];
  // A session cycling many fingerprints is not a reuse pattern worth
  // memory: reset and let the next corner rebuild (one full refresh each;
  // correctness is unaffected).
  if (per_fp.size() >= 8 && per_fp.find(fp) == per_fp.end()) per_fp.clear();
  SessionEval& se = per_fp[fp];
  if (se.eval == nullptr || se.hybrid != entry.hybrid.get()) {
    // First touch, or the cache evicted and rebuilt this entry — the old
    // evaluator would dangle on the freed tables.
    se.hybrid = entry.hybrid.get();
    se.eval = std::make_unique<core::ConditionEvaluator>(*entry.hybrid);
  }
  return *se.eval;
}

}  // namespace obd::serve
