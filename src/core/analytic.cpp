#include "core/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen.hpp"
#include "stats/histogram.hpp"
#include "stats/sampling.hpp"

namespace obd::core {
namespace {

// Builds per-axis (value, weight) pairs for one marginal distribution under
// the requested quadrature.
template <typename Marginal>
void axis_nodes(const Marginal& marginal, const AnalyticOptions& options,
                double domain_lo, double domain_hi,
                std::vector<std::pair<double, double>>& out) {
  out.clear();
  const auto cells = options.cells;
  if (options.quadrature == Quadrature::kEqualProbability) {
    for (std::size_t i = 0; i < cells; ++i) {
      const double q = (static_cast<double>(i) + 0.5) /
                       static_cast<double>(cells);
      const double qc = std::clamp(q, options.tail_epsilon,
                                   1.0 - options.tail_epsilon);
      out.emplace_back(marginal.quantile(qc),
                       1.0 / static_cast<double>(cells));
    }
  } else {
    const double width = (domain_hi - domain_lo) / static_cast<double>(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      const double x =
          domain_lo + (static_cast<double>(i) + 0.5) * width;
      out.emplace_back(x, marginal.pdf(x) * width);
    }
  }
}

}  // namespace

AnalyticAnalyzer::AnalyticAnalyzer(const ReliabilityProblem& problem,
                                   const AnalyticOptions& options)
    : problem_(&problem) {
  require(options.cells >= 2, "AnalyticAnalyzer: need at least 2 cells");
  nodes_.resize(problem.blocks().size());

  std::vector<std::pair<double, double>> u_axis;
  std::vector<std::pair<double, double>> v_axis;
  for (std::size_t j = 0; j < problem.blocks().size(); ++j) {
    const BlodMoments& blod = problem.blocks()[j].blod;

    const stats::Normal fu = blod.u_marginal();
    axis_nodes(fu, options, fu.mean() - options.u_domain_sigmas * fu.stddev(),
               fu.mean() + options.u_domain_sigmas * fu.stddev(), u_axis);

    if (blod.v_degenerate()) {
      // Single-grid block: v_j is the deterministic residual variance.
      v_axis.assign(1, {blod.v_mean(), 1.0});
    } else {
      const stats::ShiftedChiSquare fv = options.v_three_moment
                                             ? blod.v_marginal_three_moment()
                                             : blod.v_marginal();
      axis_nodes(fv, options, fv.shift(),
                 fv.quantile(options.v_upper_quantile), v_axis);
      // The three-moment shift may dip below the physical support; clamp
      // so g(u, v) always sees a valid variance.
      for (auto& [v, w] : v_axis) v = std::max(v, 0.0);
    }

    auto& list = nodes_[j];
    list.reserve(u_axis.size() * v_axis.size());
    for (const auto& [u, wu] : u_axis)
      for (const auto& [v, wv] : v_axis) list.push_back({u, v, wu * wv});
  }
}

double AnalyticAnalyzer::failure_probability(double t) const {
  return failure_from_nodes(problem_->blocks(), nodes_, t,
                            problem_->mechanisms());
}

double AnalyticAnalyzer::lifetime_at(double target) const {
  return lifetime_at_failure(
      [this](double t) { return failure_probability(t); }, target);
}

double AnalyticAnalyzer::block_failure(std::size_t j, double t) const {
  require(j < nodes_.size(), "AnalyticAnalyzer::block_failure: index");
  return block_failure_from_nodes(problem_->blocks()[j], nodes_[j], t);
}

StMcAnalyzer::StMcAnalyzer(const ReliabilityProblem& problem,
                           const StMcOptions& options)
    : problem_(&problem) {
  require(options.samples >= 100, "StMcAnalyzer: need >= 100 samples");
  require(options.histogram_bins >= 2, "StMcAnalyzer: need >= 2 bins");

  const var::CanonicalForm& canonical = problem.canonical();
  const auto& blocks = problem.blocks();
  const auto& layout = problem.layout();
  stats::Rng rng(options.seed);

  // Per-block (u, v) samples. Only each block's own joint distribution of
  // (u_j, v_j) enters the failure sum (the cross-block expectation is
  // linear, eq. 19-21), so each block's grid-thickness vector is sampled
  // independently from its exact covariance Lambda_j Lambda_j^T in a
  // block-local eigenbasis. Local correlation within a block is high, so a
  // handful of components per block captures the covariance — orders of
  // magnitude cheaper than a full-chip matvec per sample.
  const std::size_t n_blocks = blocks.size();
  std::vector<std::vector<double>> u_samples(n_blocks);
  std::vector<std::vector<double>> v_samples(n_blocks);

  const std::size_t pc = canonical.pc_count();
  for (std::size_t j = 0; j < n_blocks; ++j) {
    const auto& weights = layout.weights[j];
    const std::size_t gcount = weights.size();

    // Block-local covariance C = Lambda_j Lambda_j^T over the block's grid
    // cells, from the same (possibly truncated) canonical model the other
    // methods use. Gathering the block's sensitivity rows and forming the
    // Gram matrix with the shared rank-k helper keeps the inner products in
    // one cache-friendly kernel (identical summation order to the explicit
    // triple loop, so the samples are unchanged bit for bit).
    la::Matrix lambda(gcount, pc);
    for (std::size_t a = 0; a < gcount; ++a)
      for (std::size_t k = 0; k < pc; ++k)
        lambda(a, k) = canonical.sensitivity(weights[a].first, k);
    const la::Matrix cov = la::gram_aat(lambda);
    // Truncated eigensolve: only the components capturing 99.99% of the
    // block-local variance are converged (small blocks fall through to the
    // dense decomposition inside, so results there match the full solve).
    const auto eig = la::eigen_symmetric_truncated(cov, 0.9999);
    const std::size_t keep = eig.values.size();  // solver returns >= 1
    // Local factor L(a, k) = V(a, k) sqrt(lambda_k).
    const la::Matrix local = la::principal_factor(eig, keep);

    const double m = static_cast<double>(blocks[j].blod.device_count());
    const double sr = canonical.residual_sigma();
    auto& us = u_samples[j];
    auto& vs = v_samples[j];
    us.reserve(options.samples);
    vs.reserve(options.samples);
    std::vector<double> lhs;
    if (options.latin_hypercube)
      lhs = stats::latin_hypercube_normal(options.samples, keep, rng);

    la::Vector w(keep);
    la::Vector t(gcount);
    for (std::size_t s = 0; s < options.samples; ++s) {
      if (options.latin_hypercube) {
        for (std::size_t k = 0; k < keep; ++k) w[k] = lhs[s * keep + k];
      } else {
        for (auto& wk : w) wk = rng.normal();
      }
      for (std::size_t a = 0; a < gcount; ++a) {
        double acc = canonical.nominal(weights[a].first);
        const double* row = local.row(a);
        for (std::size_t k = 0; k < keep; ++k) acc += row[k] * w[k];
        t[a] = acc;
      }
      double u = 0.0;
      for (std::size_t a = 0; a < gcount; ++a) u += weights[a].second * t[a];
      // Residual-mean term of eq. 22 (O(1/sqrt(m_j)), kept for fidelity).
      u += sr / std::sqrt(m) * rng.normal();
      double spread = 0.0;
      for (std::size_t a = 0; a < gcount; ++a)
        spread += weights[a].second * (t[a] - u) * (t[a] - u);
      us.push_back(u);
      vs.push_back(sr * sr + m / (m - 1.0) * spread);
    }
  }

  nodes_.resize(n_blocks);
  for (std::size_t j = 0; j < n_blocks; ++j) {
    if (!options.use_histogram) {
      auto& list = nodes_[j];
      list.reserve(options.samples);
      const double w = 1.0 / static_cast<double>(options.samples);
      for (std::size_t s = 0; s < options.samples; ++s)
        list.push_back({u_samples[j][s], v_samples[j][s], w});
      continue;
    }
    // Numerical joint PDF: 2-D histogram over the sample cloud.
    auto [ulo_it, uhi_it] =
        std::minmax_element(u_samples[j].begin(), u_samples[j].end());
    auto [vlo_it, vhi_it] =
        std::minmax_element(v_samples[j].begin(), v_samples[j].end());
    const double upad = 1e-12 + 1e-9 * std::fabs(*uhi_it);
    const double vpad = 1e-12 + 1e-9 * std::fabs(*vhi_it);
    stats::Histogram2D h(*ulo_it - upad, *uhi_it + upad,
                         options.histogram_bins, *vlo_it - vpad,
                         *vhi_it + vpad, options.histogram_bins);
    for (std::size_t s = 0; s < options.samples; ++s)
      h.add(u_samples[j][s], v_samples[j][s]);

    auto& list = nodes_[j];
    for (std::size_t bi = 0; bi < h.xbins(); ++bi) {
      for (std::size_t bj = 0; bj < h.ybins(); ++bj) {
        const double p = h.probability(bi, bj);
        if (p <= 0.0) continue;
        list.push_back({h.x_center(bi), h.y_center(bj), p});
      }
    }
  }
}

double StMcAnalyzer::failure_probability(double t) const {
  return failure_from_nodes(problem_->blocks(), nodes_, t,
                            problem_->mechanisms());
}

double StMcAnalyzer::lifetime_at(double target) const {
  return lifetime_at_failure(
      [this](double t) { return failure_probability(t); }, target);
}

}  // namespace obd::core
