// Fig. 3 reproduction: gate-leakage trace of a stressed device showing the
// typical OBD progression — direct-tunneling baseline, soft breakdown (SBD,
// 10-20x leakage jump), continuous post-SBD growth, then hard breakdown
// (HBD). Prints a log-log sampled trace and an ASCII sketch.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/degradation.hpp"

int main() {
  using namespace obd;

  core::DegradationParams params;  // 3.1 V / 100 C stress-test defaults
  stats::Rng rng(2010);
  const core::LeakageTrace trace =
      core::simulate_degradation(params, rng, 1.0, 3.0e5, 220);

  std::printf("Fig. 3 reproduction: SBD -> HBD gate-leakage trace\n");
  std::printf("(stressed device; Weibull alpha = %.0f s, beta = %.2f)\n\n",
              params.alpha_stress, params.beta_stress);
  std::printf("  t_SBD = %.3e s, t_HBD = %.3e s\n", trace.t_sbd,
              trace.t_hbd);
  std::printf("  leakage jump at SBD: %.1fx; HBD criterion: %.0e A\n\n",
              params.sbd_jump, params.hbd_current);

  // ASCII sketch: log(I) vs log(t), 60 x 20.
  const double li_lo = std::log10(params.initial_leakage) - 0.3;
  const double li_hi = std::log10(params.compliance_current) + 0.3;
  for (int row = 19; row >= 0; --row) {
    std::printf("  ");
    for (int col = 0; col < 60; ++col) {
      const std::size_t idx = col * (trace.time_s.size() - 1) / 59;
      const double li = std::log10(trace.leakage_a[idx]);
      const int r = std::clamp(
          static_cast<int>((li - li_lo) / (li_hi - li_lo) * 20.0), 0, 19);
      std::printf("%c", (r == row) ? '*' : ' ');
    }
    std::printf("\n");
  }
  std::printf("  t: %.1e s %40s %.1e s\n\n", trace.time_s.front(), "",
              trace.time_s.back());

  std::printf("  %-12s %-12s\n", "time [s]", "leakage [A]");
  for (std::size_t i = 0; i < trace.time_s.size(); i += 20)
    std::printf("  %-12.3e %-12.3e\n", trace.time_s[i], trace.leakage_a[i]);
  std::printf(
      "\nPaper reference: leakage continuously increases after SBD until\n"
      "HBD triggers; SBD changes the leakage by 10-20x.\n");
  return 0;
}
