#include "core/condition_eval.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "mech/stack.hpp"

namespace obd::core {

ConditionEvaluator::ConditionEvaluator(const HybridEvaluator& hybrid,
                                       const AnalyticModelParams& model)
    : model_(model),
      hybrid_(&hybrid),
      state_(hybrid.problem()),
      inc_(hybrid),
      base_temps_c_(state_.temps_c().begin(), state_.temps_c().end()),
      base_activities_(state_.activities().begin(),
                       state_.activities().end()),
      cur_vdd_(state_.vdd()) {}

void ConditionEvaluator::apply_block(std::size_t j, double dt, double vdd,
                                     double act_scale) {
  const double temp_c = base_temps_c_[j] + dt;
  state_.set_temp_c(j, temp_c);
  state_.set_alpha_b(j, model_.alpha(temp_c, vdd), model_.b(temp_c, vdd));
  state_.set_activity(j, base_activities_[j] * act_scale);
}

void ConditionEvaluator::set_corner(double dt, double vdd,
                                    double act_scale) {
  state_.set_vdd(vdd);
  cur_vdd_ = vdd;
  cur_act_ = act_scale;
  for (std::size_t j = 0; j < state_.block_count(); ++j)
    apply_block(j, dt, vdd, act_scale);
}

void ConditionEvaluator::set_block_dt(std::size_t j, double dt) {
  apply_block(j, dt, cur_vdd_, cur_act_);
}

double ConditionEvaluator::evaluate_ls(double t) {
  const std::size_t n = state_.block_count();
  const std::span<const double> alphas = state_.alphas();
  const std::span<const double> bs = state_.bs();
  const mech::MechanismStack& stack = hybrid_->problem().mechanisms();
  if (stack.trivial()) return oxide_log_survival(t);
  ls_scratch_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double oxide_f = std::min(
        1.0, hybrid_->block_failure(j, std::log(t / alphas[j]), bs[j]));
    ls_scratch_[j] =
        stack.block_log_survival(j, oxide_f, t, state_.conditions(j));
  }
  return stack.chip_log_survival(ls_scratch_.data());
}

double ConditionEvaluator::oxide_log_survival(double t) {
  const std::size_t n = state_.block_count();
  const std::span<const double> alphas = state_.alphas();
  const std::span<const double> bs = state_.bs();
  double ls = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    ls += std::log1p(-std::min(
        1.0, hybrid_->block_failure(j, std::log(t / alphas[j]), bs[j])));
  }
  return ls;
}

double ConditionEvaluator::mechanism_log_survival(std::size_t m, double t) {
  const mech::MechanismStack& stack = hybrid_->problem().mechanisms();
  const mech::FailureMechanism& mechanism = *stack.extras()[m];
  double ls = 0.0;
  for (std::size_t j = 0; j < state_.block_count(); ++j) {
    // Same clamp as MechanismStack::extra_log_survival applies per term.
    const double f =
        std::clamp(mechanism.block_cdf(j, t, state_.conditions(j)), 0.0, 1.0);
    ls += std::log1p(-f);
  }
  return ls;
}

}  // namespace obd::core
