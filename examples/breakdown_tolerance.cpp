// Breakdown-tolerant design margins (successive-breakdown extension).
//
// The paper uses first-SBD as the chip failure criterion but notes that a
// "circuit may even survive to function after several HBDs" (Section III,
// refs [4][29][30]). This example quantifies the margin a design earns by
// tolerating k-1 breakdowns — e.g., a cache with line-sparing or a core
// with redundant columns — using the Poisson successive-breakdown law on
// top of the same statistical thickness model.
#include <cstdio>

#include "chip/design.hpp"
#include "core/duty_cycle.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "core/multi_breakdown.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;
  const double year = 365.25 * 24 * 3600;

  const chip::Design design = chip::make_benchmark(1);  // C1
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const core::AnalyticReliabilityModel model;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2);

  std::printf("Breakdown tolerance study, %s (%zu devices)\n\n",
              design.name.c_str(), design.total_devices());

  // Device-level intuition first: k-th breakdown quantiles for one block's
  // worth of area at its temperature.
  const auto& hot = problem.blocks().front();
  std::printf("Single-block view (%s, %.0f C, area %.0f):\n",
              hot.name.c_str(), hot.temp_c, hot.area);
  for (std::size_t k = 1; k <= 4; ++k) {
    const double t = core::kth_breakdown_quantile(
        1e-6, hot.alpha, hot.b, 2.2, hot.area, k);
    std::printf("  k=%zu breakdown 1ppm quantile: %9.2f years\n", k,
                t / year);
  }

  // Chip-level: Monte Carlo over the full thickness ensemble.
  const core::MonteCarloAnalyzer mc(problem, {.chip_samples = 400});
  std::printf("\nChip-level (MC over the thickness ensemble):\n");
  std::printf("  %-28s %14s %10s\n", "criterion", "10ppm life [y]", "gain");
  const double t1 = mc.kth_lifetime_at(core::kTenFaultsPerMillion, 1);
  for (std::size_t k = 1; k <= 4; ++k) {
    const double tk = mc.kth_lifetime_at(core::kTenFaultsPerMillion, k);
    std::printf("  survive %zu breakdown%s %17.2f %9.2fx\n", k - 1,
                (k == 2) ? "  " : "s ", tk / year, tk / t1);
  }
  std::printf(
      "\nTolerating even one breakdown multiplies the ppm lifetime —\n"
      "the flip side of the weakest-link law on millions of devices.\n");
  return 0;
}
