#include "core/leakage.hpp"

#include <cmath>

#include "common/error.hpp"

namespace obd::core {

LeakageAnalyzer::LeakageAnalyzer(const ReliabilityProblem& problem,
                                 const LeakageParams& params,
                                 const AnalyticOptions& integration)
    : problem_(&problem), params_(params) {
  require(params.i_ref > 0.0, "LeakageAnalyzer: i_ref must be positive");
  require(params.thickness_slope > 0.0,
          "LeakageAnalyzer: thickness slope must be positive");
  const auto& blocks = problem.blocks();
  block_coeff_.reserve(blocks.size());
  for (const auto& b : blocks) {
    block_coeff_.push_back(
        params.i_ref *
        std::exp(params.temp_coeff * (b.temp_c - params.temp_ref_c) +
                 params.vdd_slope * (problem.vdd() - params.vdd_ref)));
  }
  nodes_ = AnalyticAnalyzer(problem, integration).nodes();
}

double LeakageAnalyzer::unit_leakage(std::size_t j, double u,
                                     double v) const {
  const double k = params_.thickness_slope;
  return block_coeff_[j] *
         std::exp(-k * (u - params_.x_ref) + 0.5 * k * k * std::max(0.0, v));
}

double LeakageAnalyzer::block_mean(std::size_t j) const {
  require(j < nodes_.size(), "LeakageAnalyzer::block_mean: index");
  double s = 0.0;
  for (const auto& n : nodes_[j])
    s += n.weight * unit_leakage(j, n.u, n.v);
  return problem_->blocks()[j].area * s;
}

double LeakageAnalyzer::mean() const {
  double total = 0.0;
  for (std::size_t j = 0; j < nodes_.size(); ++j) total += block_mean(j);
  return total;
}

double LeakageAnalyzer::nominal_chip() const {
  double total = 0.0;
  const auto& blocks = problem_->blocks();
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const auto& blod = blocks[j].blod;
    // Nominal die: u at its nominal, v at the residual-only floor.
    total += blocks[j].area *
             unit_leakage(j, blod.u_nominal(), blod.v_constant());
  }
  return total;
}

std::vector<double> LeakageAnalyzer::sample_chip_leakage(
    std::size_t count, std::uint64_t seed) const {
  require(count > 0, "LeakageAnalyzer: count must be positive");
  const auto& blocks = problem_->blocks();
  const var::CanonicalForm& canonical = problem_->canonical();
  stats::Rng rng(seed);
  std::vector<double> totals;
  totals.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const la::Vector z = canonical.sample_z(rng);
    double chip = 0.0;
    for (std::size_t j = 0; j < blocks.size(); ++j) {
      const auto& blod = blocks[j].blod;
      chip += blocks[j].area *
              unit_leakage(j, blod.u_value(z), blod.v_value(z));
    }
    totals.push_back(chip);
  }
  return totals;
}

}  // namespace obd::core
