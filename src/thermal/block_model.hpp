// Block-level compact thermal model (HotSpot's "block mode").
//
// The grid solver (solver.hpp) is the accuracy reference; this model works
// at the granularity the reliability analysis actually consumes — one node
// per functional block. Blocks exchange heat through shared-boundary
// conductances (proportional to shared edge length over center distance)
// and sink vertically through the package (proportional to area). The
// resulting N x N SPD system is solved directly by Cholesky, making block
// mode ~1000x cheaper than a grid solve — the right tool inside
// optimization loops like the voltage-guard-band explorer.
#pragma once

#include "chip/design.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

namespace obd::thermal {

/// Solves the block-granularity compact model. Returns a ThermalProfile
/// whose cell field is rendered from the block temperatures (for the same
/// downstream consumers); `resolution` only controls that rendering.
ThermalProfile solve_thermal_blocks(const chip::Design& design,
                                    const power::PowerMap& power,
                                    const ThermalParams& params = {});

/// Shared-edge length [mm] between two blocks' rectangles (0 when they do
/// not abut). Exposed for tests.
double shared_edge_length(const chip::Rect& a, const chip::Rect& b);

}  // namespace obd::thermal
