// Incremental chip-failure recomputation over the hybrid lookup tables.
//
// The chip failure probability is a reduction over per-block terms that
// are each a pure function of (t, alpha_j, b_j, conditions_j). When a DRM
// step, a trace phase, or a serve override touches k of N blocks, the
// other N-k terms are unchanged — recomputing them is pure waste, and on
// realistic traces k << N (a thermal step moves a few hot blocks; a serve
// `set.*` override retargets one knob). The IncrementalEvaluator caches
// the per-block log-survival rows and refreshes only the rows a
// ChipState's dirty set names.
//
// Bit-identity is by construction, not by tolerance: each cached row is
// byte-identical to what a from-scratch evaluation would compute (same
// lookup, same ops), and the final reduction always folds all N rows in
// fixed ascending block order regardless of which ones were refreshed —
// composition order and reduction boundaries never depend on the dirty
// set. A full rebuild is forced whenever the cache could not be trusted:
// first use, a different ChipState object, a changed t (bit compare), or
// a generation that went backwards (state replaced in place).
#pragma once

#include <cstdint>
#include <vector>

#include "core/chip_state.hpp"
#include "core/hybrid.hpp"

namespace obd::core {

/// Counters for diagnostics (`step.dirty_blocks`) and the perf gates.
struct IncrementalStats {
  std::uint64_t evaluations = 0;    ///< evaluate() calls
  std::uint64_t full_rebuilds = 0;  ///< evaluations that refreshed all rows
  std::uint64_t rows_refreshed = 0; ///< total rows recomputed
  std::size_t last_dirty = 0;       ///< rows refreshed by the last evaluate()
};

/// Caches per-block log-survival rows over a HybridEvaluator and a
/// ChipState; refreshes dirty rows only. Owns the state's dirty set while
/// paired with it (single-consumer contract — see chip_state.hpp).
class IncrementalEvaluator {
 public:
  /// `hybrid` (and its problem) must outlive this evaluator.
  explicit IncrementalEvaluator(const HybridEvaluator& hybrid);

  /// Failure probability at `t` for the state's current parameters.
  /// Bit-identical to
  ///   trivial stack:  hybrid.failure_probability_with(t, alphas, bs)
  ///   non-trivial:    stack.compose_under(oxide_f, t, state conditions)
  /// for any history of partial updates. Consumes (clears) the state's
  /// dirty set.
  [[nodiscard]] double evaluate(ChipState& state, double t);

  [[nodiscard]] const IncrementalStats& stats() const { return stats_; }

 private:
  void refresh_row(const ChipState& state, std::size_t j, double t);

  const HybridEvaluator* hybrid_;          // non-owning
  const mech::MechanismStack* stack_;      // non-owning
  std::vector<double> rows_;               ///< per-block log-survival terms
  const ChipState* last_state_ = nullptr;
  std::uint64_t last_t_bits_ = 0;
  std::uint64_t last_generation_ = 0;
  bool valid_ = false;
  IncrementalStats stats_;
};

}  // namespace obd::core
