// Spatial-correlation extraction from measurement data.
//
// Section II: "The covariance matrix could be determined from measurement
// data extracted from manufactured wafers using the method given in [20]"
// (Xiong, Zolotov, He, ISPD'06). The paper itself had no measurement data
// and fell back to an exponential-decay model (Section V); this module
// provides the missing measurement-driven path so the library is complete:
//
//   1. decompose measured per-chip site thicknesses into global (chip mean)
//      and local residuals;
//   2. estimate the empirical covariance as a function of site separation
//      (distance binning);
//   3. fit a valid decreasing correlation function rho(d) = exp(-d/L) by
//      1-D minimization of the squared fit error;
//   4. assemble the grid covariance and project it to the nearest PSD
//      matrix (eigenvalue clipping) — the "robustness" step of [20].
//
// A measurement simulator is included so the round trip (known model ->
// synthetic wafer data -> extracted model) is testable end to end.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "variation/model.hpp"

namespace obd::var {

/// Test-site measurement campaign: `sites` locations on every chip, one row
/// of `thickness` per chip (chips x sites).
struct MeasurementSet {
  std::vector<std::pair<double, double>> sites;  ///< (x, y) in mm
  la::Matrix thickness;                          ///< chips x sites [nm]
  double die_width = 0.0;
  double die_height = 0.0;
};

/// Simulates a measurement campaign from a known canonical model: for each
/// chip, draw the principal components and per-site residuals and record
/// the site thicknesses. Sites are assigned to grid cells by location.
MeasurementSet simulate_measurements(const CanonicalForm& canonical,
                                     const GridModel& grid,
                                     std::size_t chips, std::size_t sites,
                                     stats::Rng& rng);

/// Result of a correlation extraction.
struct ExtractionResult {
  double nominal = 0.0;            ///< estimated nominal thickness [nm]
  double sigma_global = 0.0;       ///< die-to-die sigma [nm]
  double sigma_spatial = 0.0;      ///< spatially correlated sigma [nm]
  double sigma_independent = 0.0;  ///< residual sigma [nm]
  double rho_dist = 0.0;           ///< fitted correlation length / die size
  double fit_rmse = 0.0;           ///< RMSE of the rho(d) fit
  /// Empirical correlation-vs-distance curve (bin center [mm], rho).
  std::vector<std::pair<double, double>> correlation_curve;

  /// Equivalent VariationBudget for downstream use.
  [[nodiscard]] VariationBudget to_budget() const;
};

struct ExtractionOptions {
  std::size_t distance_bins = 12;
  /// Bracket for the correlation-length search, as fractions of the die
  /// dimension.
  double rho_lo = 0.05;
  double rho_hi = 2.0;
};

/// Extracts the variation decomposition and spatial correlation from a
/// measurement set. Requires at least 10 chips and 3 sites.
ExtractionResult extract_correlation(const MeasurementSet& data,
                                     const ExtractionOptions& options = {});

/// Projects a symmetric matrix to the nearest (Frobenius) positive
/// semidefinite matrix by clipping negative eigenvalues — the validity
/// repair of [20] applied to empirically assembled covariances. `floor`
/// replaces negative eigenvalues (0 for plain PSD projection).
la::Matrix project_to_psd(const la::Matrix& symmetric, double floor = 0.0);

}  // namespace obd::var
