#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::thermal {

TransientSimulator::TransientSimulator(const chip::Design& design,
                                       const TransientParams& params)
    : design_(design), params_(params), n_(params.thermal.resolution) {
  design_.validate();
  require(n_ >= 2, "TransientSimulator: resolution must be >= 2");
  require(params.heat_capacity > 0.0,
          "TransientSimulator: heat capacity must be positive");
  require(params.step_safety > 0.0 && params.step_safety <= 1.0,
          "TransientSimulator: step safety must be in (0, 1]");

  const double cw = design_.width / static_cast<double>(n_);
  const double ch = design_.height / static_cast<double>(n_);
  g_lat_x_ = params.thermal.conductivity * params.thermal.die_thickness *
             (ch / cw);
  g_lat_y_ = params.thermal.conductivity * params.thermal.die_thickness *
             (cw / ch);
  g_vert_ = (1.0 / params.thermal.package_resistance) /
            static_cast<double>(n_ * n_);
  cell_capacity_ =
      params.heat_capacity * cw * ch * params.thermal.die_thickness;

  rise_.assign(n_ * n_, 0.0);
  scratch_.assign(n_ * n_, 0.0);
}

void TransientSimulator::reset(double temp_c) {
  std::fill(rise_.begin(), rise_.end(),
            temp_c - params_.thermal.ambient_c);
  time_s_ = 0.0;
}

double TransientSimulator::cell_time_constant() const {
  return cell_capacity_ /
         (2.0 * g_lat_x_ + 2.0 * g_lat_y_ + g_vert_);
}

double TransientSimulator::die_time_constant() const {
  return cell_capacity_ * static_cast<double>(n_ * n_) *
         params_.thermal.package_resistance;
}

std::vector<double> TransientSimulator::cell_power(
    const power::PowerMap& power) const {
  require(power.block_watts.size() == design_.blocks.size(),
          "TransientSimulator: power map size mismatch");
  const double cw = design_.width / static_cast<double>(n_);
  const double ch = design_.height / static_cast<double>(n_);
  std::vector<double> p(n_ * n_, 0.0);
  for (std::size_t b = 0; b < design_.blocks.size(); ++b) {
    const chip::Rect& rect = design_.blocks[b].rect;
    const double density = power.block_watts[b] / rect.area();
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t c = 0; c < n_; ++c) {
        const chip::Rect cell{static_cast<double>(c) * cw,
                              static_cast<double>(r) * ch, cw, ch};
        const double ov = rect.overlap(cell);
        if (ov > 0.0) p[r * n_ + c] += density * ov;
      }
    }
  }
  return p;
}

void TransientSimulator::advance(const power::PowerMap& power,
                                 double duration) {
  require(duration >= 0.0, "TransientSimulator: negative duration");
  if (duration == 0.0) return;
  const std::vector<double> p = cell_power(power);

  // Explicit-Euler stability: dt < C / G_total.
  const double dt_max = params_.step_safety * cell_time_constant();
  const auto steps =
      static_cast<std::size_t>(std::ceil(duration / dt_max));
  const double dt = duration / static_cast<double>(steps);

  for (std::size_t step = 0; step < steps; ++step) {
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t c = 0; c < n_; ++c) {
        const std::size_t i = r * n_ + c;
        double flux = p[i] - g_vert_ * rise_[i];
        if (c > 0) flux += g_lat_x_ * (rise_[i - 1] - rise_[i]);
        if (c + 1 < n_) flux += g_lat_x_ * (rise_[i + 1] - rise_[i]);
        if (r > 0) flux += g_lat_y_ * (rise_[i - n_] - rise_[i]);
        if (r + 1 < n_) flux += g_lat_y_ * (rise_[i + n_] - rise_[i]);
        scratch_[i] = rise_[i] + dt * flux / cell_capacity_;
      }
    }
    rise_.swap(scratch_);
  }
  time_s_ += duration;
}

ThermalProfile TransientSimulator::profile() const {
  ThermalProfile out;
  out.resolution = n_;
  out.die_width = design_.width;
  out.die_height = design_.height;
  out.cell_temps_c.resize(n_ * n_);
  for (std::size_t i = 0; i < n_ * n_; ++i)
    out.cell_temps_c[i] = params_.thermal.ambient_c + rise_[i];

  const double cw = design_.width / static_cast<double>(n_);
  const double ch = design_.height / static_cast<double>(n_);
  out.block_temps_c.resize(design_.blocks.size());
  for (std::size_t b = 0; b < design_.blocks.size(); ++b) {
    const chip::Rect& rect = design_.blocks[b].rect;
    double weighted = 0.0;
    double area = 0.0;
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t c = 0; c < n_; ++c) {
        const chip::Rect cell{static_cast<double>(c) * cw,
                              static_cast<double>(r) * ch, cw, ch};
        const double ov = rect.overlap(cell);
        if (ov <= 0.0) continue;
        weighted += ov * out.cell_temps_c[r * n_ + c];
        area += ov;
      }
    }
    out.block_temps_c[b] = weighted / area;
  }
  return out;
}

}  // namespace obd::thermal
