// Mutable SoA view of the per-block operating state of one chip, with
// per-block dirty tracking.
//
// A ChipState snapshots the reliability-relevant per-block parameters of a
// ReliabilityProblem — (alpha_j, b_j) oxide indices, block temperature,
// switching activity — plus the chip supply, into plain parallel arrays.
// Consumers that re-evaluate the chip repeatedly under small state deltas
// (DRM steps, trace replay, serve `set.*` overrides) mutate it through the
// bit-comparing setters; a setter that actually changes a value marks that
// block dirty and bumps the generation counter. The IncrementalEvaluator
// then refreshes only the dirty rows of its cached per-block terms.
//
// Dirty bits follow a single-consumer contract: exactly one evaluator owns
// the state's dirty set and calls clear_dirty() after consuming it. Two
// evaluators sharing one ChipState would each clear the other's deltas —
// give each its own state instead.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.hpp"
#include "mech/mechanism.hpp"

namespace obd::core {

class ChipState {
 public:
  /// Snapshots `problem`'s per-block parameters; every block starts dirty
  /// (the first evaluation is always a full build). `problem` must outlive
  /// this state.
  explicit ChipState(const ReliabilityProblem& problem);

  [[nodiscard]] const ReliabilityProblem& problem() const {
    return *problem_;
  }
  [[nodiscard]] std::size_t block_count() const { return alphas_.size(); }

  [[nodiscard]] std::span<const double> alphas() const { return alphas_; }
  [[nodiscard]] std::span<const double> bs() const { return bs_; }
  [[nodiscard]] std::span<const double> temps_c() const { return temps_c_; }
  [[nodiscard]] std::span<const double> activities() const {
    return activities_;
  }
  [[nodiscard]] double vdd() const { return vdd_; }

  /// Operating conditions of block `j` as the mechanism stack consumes
  /// them (block temperature, chip supply, block activity).
  [[nodiscard]] mech::OperatingConditions conditions(std::size_t j) const {
    return {temps_c_[j], vdd_, activities_[j]};
  }

  /// Monotone mutation counter: bumped once per state-changing setter call
  /// (no-op writes excluded). An evaluator that observes a generation
  /// *lower* than its cached one is looking at a rebuilt state and must
  /// discard its cache.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Setters compare bit patterns: writing back the value already stored
  /// is a no-op (no dirty bit, no generation bump), so a trace replay that
  /// rewrites a mostly-unchanged profile dirties only the true deltas.
  /// alpha/b must stay positive — the evaluator's row cache relies on the
  /// invariant instead of revalidating untouched rows per query.
  void set_alpha_b(std::size_t j, double alpha, double b);
  void set_temp_c(std::size_t j, double temp_c);
  void set_activity(std::size_t j, double activity);
  /// The supply is chip-global; changing it dirties every block (aging
  /// mechanisms read vdd through each block's operating conditions).
  void set_vdd(double vdd);

  [[nodiscard]] bool dirty(std::size_t j) const {
    return (dirty_[j >> 6] >> (j & 63)) & 1u;
  }
  [[nodiscard]] std::size_t dirty_count() const;
  void mark_all_dirty();
  /// Consumes the dirty set. Called by the owning evaluator only (see the
  /// single-consumer contract above).
  void clear_dirty();

  /// Invokes fn(j) for every dirty block, ascending j.
  template <typename Fn>
  void for_each_dirty(Fn&& fn) const {
    for (std::size_t w = 0; w < dirty_.size(); ++w) {
      std::uint64_t word = dirty_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn((w << 6) + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  void mark_dirty(std::size_t j) {
    dirty_[j >> 6] |= std::uint64_t{1} << (j & 63);
    ++generation_;
  }

  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  std::vector<double> alphas_;
  std::vector<double> bs_;
  std::vector<double> temps_c_;
  std::vector<double> activities_;
  double vdd_ = 0.0;
  std::vector<std::uint64_t> dirty_;  ///< one bit per block
  std::uint64_t generation_ = 0;
};

}  // namespace obd::core
