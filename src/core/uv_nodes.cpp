#include "core/uv_nodes.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace obd::core {

double block_failure_from_nodes(const BlockParams& block,
                                const std::vector<UvNode>& nodes, double t) {
  double f = 0.0;
  for (const auto& n : nodes)
    f += n.weight * block_conditional_failure(block, t, n.u, n.v);
  return f;
}

double failure_from_nodes(const std::vector<BlockParams>& blocks,
                          const std::vector<std::vector<UvNode>>& nodes,
                          double t) {
  require(nodes.size() == blocks.size(),
          "failure_from_nodes: one node list per block required");
  double f = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j)
    f += block_failure_from_nodes(blocks[j], nodes[j], t);
  return std::clamp(f, 0.0, 1.0);
}

}  // namespace obd::core
