// Importance-sampled (exponentially tilted) ensemble failure estimation.
//
// The conditional chip failure F(t | z) is log-linear in the shared
// thickness components: ln F ~ sum_j gamma_j b_j u_j(z) + const, so the
// ensemble failure E_z[F] is essentially a lognormal expectation
// E[e^{s X}], X ~ N(0, 1), along the failure-gradient direction d. The
// classic zero-variance sampler for such expectations draws X from
// N(s, 1) and reweights with the exact likelihood ratio
//
//     w(z) = phi(z) / phi(z - mu d) = exp(-mu d.z + mu^2 / 2),  mu = s,
//
// which removes (to first order) the entire variance contributed by the
// dominant direction while staying unbiased. The tilt steepness s is
// computed automatically from the canonical model; samples in orthogonal
// directions keep their residual variance. Valid at any quantile — and
// the variance reduction is what makes parts-per-billion sign-off targets
// cheap to estimate with tight error bars.
#pragma once

#include <cstdint>

#include "core/problem.hpp"

namespace obd::core {

struct ImportanceOptions {
  std::size_t samples = 20000;
  std::uint64_t seed = 31;
  /// Multiplier on the automatically computed optimal tilt steepness
  /// (1 = optimal exponential tilt; 0 = plain Monte Carlo).
  double tilt_scale = 1.0;
};

/// Result of one estimation run.
struct ImportanceEstimate {
  double failure = 0.0;     ///< unbiased estimate of F(t)
  double std_error = 0.0;   ///< standard error of the estimate
  double tilt = 0.0;        ///< chosen mean shift mu
  /// Effective sample size ( (sum w)^2 / sum w^2 ): how many "plain"
  /// samples the weighted set is worth.
  double effective_samples = 0.0;
};

/// Estimates the ensemble failure probability at time t. Valid at any
/// quantile; pays off when F(t) is far below 1/samples.
ImportanceEstimate importance_failure(const ReliabilityProblem& problem,
                                      double t,
                                      const ImportanceOptions& options = {});

}  // namespace obd::core
