// Distribution of quadratic forms in standard normal variables.
//
// The BLOD sample variance v_j is a quadratic (plus linear) form in the
// principal components (eq. 24 of the paper):
//
//     v(z) = c + l^T z + z^T Q z,      z ~ N(0, I).
//
// This header provides:
//   * exact evaluation and sampling of v(z);
//   * its analytic mean / variance;
//   * the paper's computationally efficient scaled-chi-square approximation
//     (eq. 29-30; Yuan & Bentler two-moment matching, ref. [33]);
//   * Imhof's exact numerical-inversion CDF (ref. [32]) as the accuracy
//     reference for Fig. 8.
#pragma once

#include "linalg/matrix.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace obd::stats {

/// Scaled, shifted chi-square: X ~ shift + scale * chi2(dof), with possibly
/// fractional dof (gamma-based). This is the approximating family of
/// eq. (29) for the BLOD variance.
class ShiftedChiSquare {
 public:
  ShiftedChiSquare(double shift, double scale, double dof);

  [[nodiscard]] double shift() const { return shift_; }
  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double dof() const { return chi_.dof(); }
  [[nodiscard]] double mean() const { return shift_ + scale_ * chi_.mean(); }
  [[nodiscard]] double variance() const {
    return scale_ * scale_ * chi_.variance();
  }

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  double sample(Rng& rng) const;

 private:
  double shift_;
  double scale_;
  ChiSquare chi_;
};

/// v(z) = constant + linear . z + z^T quad z over z ~ N(0, I).
struct QuadraticForm {
  double constant = 0.0;
  la::Vector linear;  ///< may be empty (treated as zero)
  la::Matrix quad;    ///< symmetric; may be empty (treated as zero)

  /// Dimension of z. linear/quad must agree when both are present.
  [[nodiscard]] std::size_t dimension() const;

  /// Evaluates the form at a concrete z.
  [[nodiscard]] double value(const la::Vector& z) const;

  /// E[v] = constant + tr(Q).
  [[nodiscard]] double mean() const;

  /// Var[v] = 2 tr(Q^2) + |l|^2 (for Gaussian z; cross term vanishes by
  /// symmetry of odd moments).
  [[nodiscard]] double variance() const;

  /// Draws one sample by sampling z ~ N(0, I).
  double sample(Rng& rng) const;
};

/// Yuan–Bentler two-moment match: approximates the form by
/// constant + a_hat * chi2(b_hat) with
///   a_hat = Var / (2 tr(Q)),  b_hat = 2 tr(Q)^2 / Var
/// which reduces to the paper's eq. (30) when the linear term is zero
/// (a_hat = tr(Q^2)/tr(Q), b_hat = tr(Q)^2/tr(Q^2)).
///
/// Requires tr(Q) > 0 (the BLOD variance form is a PSD Gram matrix, so this
/// holds whenever the block spans more than one correlation grid).
ShiftedChiSquare chi_square_match(const QuadraticForm& form);

/// Three-moment match (the second Yuan-Bentler approximation; the paper's
/// footnote 4: "we still can include more moments and pick up an
/// appropriate distribution"): approximates the form by
/// shift + scale * chi2(dof) where dof matches the *skewness* and
/// (shift, scale) then match mean and variance. More accurate in the tails
/// than chi_square_match when the spectrum is dominated by few eigenvalues.
///
/// Moments used: E = c + tr(Q), Var = 2 tr(Q^2) + |l|^2,
/// third central moment mu3 = 8 tr(Q^3) + 6 l^T Q l.
/// Requires positive skewness (true for PSD Q).
ShiftedChiSquare three_moment_match(const QuadraticForm& form);

/// Third central moment of the form under z ~ N(0, I):
/// mu3 = 8 tr(Q^3) + 6 l^T Q l.
double third_central_moment(const QuadraticForm& form);

/// Imhof (1961) exact CDF P(v <= x) by numerical inversion of the
/// characteristic function. Supports a linear term by completing the square
/// into noncentral chi-squares (requires Q nonsingular on the span of l;
/// components of l in Q's null space are rejected with obd::Error).
///
/// This is the high-accuracy reference used to score the chi-square
/// approximation in the Fig. 8 reproduction.
double imhof_cdf(const QuadraticForm& form, double x, double tolerance = 1e-8);

}  // namespace obd::stats
