// Minimal CSV writing for the benchmark harness.
//
// Each bench binary can dump machine-readable results next to its printed
// tables (enabled by setting OBDREL_CSV_DIR); this writer handles quoting
// and numeric formatting so downstream plotting scripts get clean files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace obd {

/// Row-oriented CSV writer (RFC-4180-style quoting).
class CsvWriter {
 public:
  /// Writes to `out` (not owned; must outlive the writer).
  explicit CsvWriter(std::ostream& out);

  /// Writes one row of raw string cells (quoted as needed).
  void row(const std::vector<std::string>& cells);

  /// Convenience: header then repeated numeric rows.
  void header(const std::vector<std::string>& names);
  void numeric_row(const std::vector<double>& values, int precision = 10);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  std::ostream* out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

/// Returns the directory benches should dump CSVs into (the OBDREL_CSV_DIR
/// environment variable), or an empty string when dumping is disabled.
std::string csv_output_dir();

}  // namespace obd
