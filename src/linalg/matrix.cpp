#include "linalg/matrix.hpp"

#include <cmath>

namespace obd::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::multiply(const Vector& x) const {
  require(x.size() == cols_, "Matrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::matmul(const Matrix& other) const {
  require(cols_ == other.rows(), "Matrix::matmul: dimension mismatch");
  Matrix out(rows_, other.cols(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* b = other.row(k);
      double* o = out.row(r);
      for (std::size_t c = 0; c < other.cols(); ++c) o[c] += a * b[c];
    }
  }
  return out;
}

double Matrix::trace() const {
  require(rows_ == cols_, "Matrix::trace: matrix must be square");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::frobenius_squared() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::max_asymmetry() const {
  require(rows_ == cols_, "Matrix::max_asymmetry: matrix must be square");
  double worst = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      worst = std::max(worst, std::fabs((*this)(r, c) - (*this)(c, r)));
  return worst;
}

Matrix gram_aat(const Matrix& a) {
  require(!a.empty(), "gram_aat: matrix must be non-empty");
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ri = a.row(i);
    for (std::size_t j = i; j < n; ++j) {
      const double* rj = a.row(j);
      double s = 0.0;
      for (std::size_t c = 0; c < k; ++c) s += ri[c] * rj[c];
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

}  // namespace obd::la
